open Moldable_util
open Moldable_model
open Moldable_graph

type policy = {
  name : string;
  on_ready : now:float -> Task.t -> unit;
  next_launch : now:float -> free:int -> (int * int) option;
}

exception Policy_error of string

type failure_model = {
  model_name : string;
  fails : Rng.t -> task_id:int -> attempt:int -> bool;
}

let never =
  { model_name = "never"; fails = (fun _ ~task_id:_ ~attempt:_ -> false) }

let bernoulli ~q =
  if q < 0. || q >= 1. then
    invalid_arg "Sim_core.bernoulli: q must be in [0, 1)";
  {
    model_name = Printf.sprintf "bernoulli(%.3f)" q;
    fails = (fun rng ~task_id:_ ~attempt:_ -> Rng.bernoulli rng q);
  }

let at_most ~k =
  if k < 0 then invalid_arg "Sim_core.at_most: k must be >= 0";
  {
    model_name = Printf.sprintf "at-most(%d)" k;
    fails = (fun _ ~task_id:_ ~attempt -> attempt <= k);
  }

type event =
  | Ready of int
  | Start of int * int
  | Finish of int
  | Failed of int * int

type attempt = {
  task_id : int;
  attempt : int;
  start : float;
  finish : float;
  nprocs : int;
  procs : int array;
  failed : bool;
}

type result = {
  schedule : Schedule.t;
  trace : (float * event) list;
  attempts : attempt list;
  makespan : float;
  n_attempts : int;
  n_failures : int;
  metrics : Metrics.t;
}

(* Task states, as int codes so the arena's state array is a plain
   [int array] reusable across runs. *)
let st_unrevealed = 0
let st_available = 1
let st_running = 2
let st_done = 3

(* ------------------------------------------------------------------ arena *)

(* Sentinel for the arena's task array; never revealed or launched (every
   readable slot is overwritten by [Stepper.admit_task] first). *)
let dummy_task = Task.make ~label:"-" ~id:0 (Speedup.Roofline { w = 1.; ptilde = 1 })

(* All per-run storage in one reusable bundle: the event heap, the per-task
   bookkeeping arrays, the incremental task/edge store of the stepper, the
   recording buffers and the platform (with its recycled-segment pool).
   [ensure] grows everything to the (p, n) high-water mark; nothing
   shrinks, so a pool domain that sweeps many cells allocates the arrays
   once and reuses them for every run. *)
module Arena = struct
  type t = {
    mutable platform : Platform.t option;
    events : Event_queue.t;
    mutable cap : int; (* current per-task array capacity *)
    mutable state : int array;
    mutable indeg : int array;
    mutable attempt_no : int array;
    mutable first_ready : float array;
    mutable first_start : float array;
    mutable service : float array;
    mutable run_start : float array; (* start stamp of the running attempt *)
    mutable run_procs : int array array; (* procs of the running attempt *)
    mutable outcomes : int array; (* per-batch classification buffer *)
    (* Incremental task/graph store: tasks and release times land here as
       they are admitted, and precedence edges form per-predecessor
       intrusive singly-linked lists threaded through the edge buffers
       ([succ_first]/[succ_last] index into [edge_to]/[edge_next], -1 ends
       a list).  Edges are appended in admission order, so each list is
       ascending in successor id — the same iteration order as
       [Dag.successors]. *)
    mutable tasks : Task.t array;
    mutable rel : float array; (* release times, 0 when unconstrained *)
    mutable succ_first : int array;
    mutable succ_last : int array;
    edge_to : Growbuf.I.t;
    edge_next : Growbuf.I.t;
    pending : Growbuf.I.t; (* admitted dependency-free, not yet revealed *)
    (* Successful placements (stride 1 int, stride 2 float, 1 procs array
       per success); turned into the [Schedule.t] once, at drain. *)
    pl_ints : Growbuf.I.t;
    pl_floats : Growbuf.F.t;
    pl_procs : int array Growbuf.A.t;
    (* Full-mode recording buffers; converted to the public list-shaped
       result fields once at the end of a run. *)
    tr_times : Growbuf.F.t;
    tr_a : Growbuf.I.t; (* event kind (2 bits) lor (first arg lsl 2) *)
    tr_b : Growbuf.I.t; (* second arg, 0 when absent *)
    at_ints : Growbuf.I.t; (* stride 3: task_id, attempt, nprocs*2+failed *)
    at_floats : Growbuf.F.t; (* stride 2: start, finish *)
    at_procs : int array Growbuf.A.t;
    qd_times : Growbuf.F.t;
    qd_depths : Growbuf.I.t;
    mutable in_use : bool;
        (* A nested/concurrent run on the same arena would corrupt it;
           [Stepper.create] checks the flag and falls back to a private
           arena. *)
  }

  let create () =
    {
      platform = None;
      events = Event_queue.create ();
      cap = 0;
      state = [||];
      indeg = [||];
      attempt_no = [||];
      first_ready = [||];
      first_start = [||];
      service = [||];
      run_start = [||];
      run_procs = [||];
      outcomes = [||];
      tasks = [||];
      rel = [||];
      succ_first = [||];
      succ_last = [||];
      edge_to = Growbuf.I.create ();
      edge_next = Growbuf.I.create ();
      pending = Growbuf.I.create ();
      pl_ints = Growbuf.I.create ();
      pl_floats = Growbuf.F.create ();
      pl_procs = Growbuf.A.create ~dummy:[||] ();
      tr_times = Growbuf.F.create ();
      tr_a = Growbuf.I.create ();
      tr_b = Growbuf.I.create ();
      at_ints = Growbuf.I.create ();
      at_floats = Growbuf.F.create ();
      at_procs = Growbuf.A.create ~dummy:[||] ();
      qd_times = Growbuf.F.create ();
      qd_depths = Growbuf.I.create ();
      in_use = false;
    }

  let ensure t ~p ~n =
    if n > t.cap then begin
      let cap = max n (2 * t.cap) in
      t.state <- Array.make cap st_unrevealed;
      t.indeg <- Array.make cap 0;
      t.attempt_no <- Array.make cap 0;
      t.first_ready <- Array.make cap nan;
      t.first_start <- Array.make cap nan;
      t.service <- Array.make cap 0.;
      t.run_start <- Array.make cap 0.;
      t.run_procs <- Array.make cap [||];
      t.tasks <- Array.make cap dummy_task;
      t.rel <- Array.make cap 0.;
      t.succ_first <- Array.make cap (-1);
      t.succ_last <- Array.make cap (-1);
      t.cap <- cap
    end;
    (match t.platform with
    | Some pl when Platform.p pl = p -> Platform.reset pl
    | Some _ | None -> t.platform <- Some (Platform.create p))

  (* Content-preserving growth, for admissions past the capacity of a
     stepper that is already running (the platform and everything recorded
     so far are untouched). *)
  let grow t ~n =
    if n > t.cap then begin
      let cap = max (max n 16) (2 * t.cap) in
      let gi dummy a =
        let b = Array.make cap dummy in
        Array.blit a 0 b 0 t.cap;
        b
      in
      t.state <- gi st_unrevealed t.state;
      t.indeg <- gi 0 t.indeg;
      t.attempt_no <- gi 0 t.attempt_no;
      t.first_ready <- gi nan t.first_ready;
      t.first_start <- gi nan t.first_start;
      t.service <- gi 0. t.service;
      t.run_start <- gi 0. t.run_start;
      t.run_procs <- gi [||] t.run_procs;
      t.tasks <- gi dummy_task t.tasks;
      t.rel <- gi 0. t.rel;
      t.succ_first <- gi (-1) t.succ_first;
      t.succ_last <- gi (-1) t.succ_last;
      t.cap <- cap
    end

  let outcomes_for t len =
    if Array.length t.outcomes < len then
      t.outcomes <- Array.make (max len (2 * Array.length t.outcomes)) 0;
    t.outcomes

  (* One arena per pool domain: workers are long-lived, so a parallel sweep
     re-allocates nothing per cell. *)
  let dls_key = Domain.DLS.new_key (fun () -> create ())
  let for_current_domain () = Domain.DLS.get dls_key
end

(* Event payload encoding for the int-keyed queue: the low bit tags the
   kind, the rest is the task id.  The side data a completion used to carry
   in a [Complete] record (attempt number, start stamp, processor block)
   lives in the arena's per-task arrays — a task has at most one
   outstanding attempt — and the exact finish stamp is the event's own heap
   key ([Event_queue.batch_stamp]), which [pop_simultaneous]-style batching
   preserves per event. *)
let[@inline] enc_reveal i = i lsl 1
let[@inline] enc_complete tid = (tid lsl 1) lor 1

(* Trace event encoding for the recording buffers: kind in the low 2 bits
   of [tr_a], first argument above them, second argument in [tr_b]. *)
let ev_ready = 0
let ev_start = 1
let ev_finish = 2
let ev_failed = 3

let validate_inputs ?release_times ~max_attempts ~n () =
  (match release_times with
  | None -> ()
  | Some r ->
    if Array.length r <> n then
      invalid_arg "Sim_core.run: release_times length must equal task count";
    Array.iter
      (fun t ->
        if not (Float.is_finite t) || t < 0. then
          invalid_arg "Sim_core.run: release times must be finite and >= 0")
      r);
  if max_attempts < 1 then
    invalid_arg "Sim_core.run: max_attempts must be >= 1"

(* ---------------------------------------------------------------- stepper *)

(* The re-entrant form of the event loop: all run state lives in a record
   instead of closures, tasks can be admitted after the clock has started,
   and the virtual clock advances in bounded steps.  The batch [run] below
   is a thin loop over this module — create, admit every task of the DAG
   in id order, drain — and the differential suite pins that composition
   bit-identical to [run_reference]. *)
module Stepper = struct
  type t = {
    policy : policy;
    p : int;
    lean : bool;
    recording : bool;
    traced : bool;
    tracer : Tracer.t;
    registry : Moldable_obs.Registry.t;
    failures : failure_model;
    max_attempts : int;
    rng : Rng.t;
    arena : Arena.t;
    platform : Platform.t;
    events : Event_queue.t;
    recycle_ok : bool;
        (* A failed attempt's processor block can return to the platform's
           segment pool only when nothing retains it: lean mode keeps no
           attempt records, and a live tracer would capture the block in
           its spans. *)
    counters : Metrics.counters;
    (* One-cell float arrays, not mutable float fields: in a mixed record a
       float-field store allocates a box, a float-array store does not, and
       both cells are written on the hot path. *)
    ms : float array; (* makespan so far *)
    now_cell : float array; (* current virtual time *)
    mutable n : int; (* admitted tasks; the next admission index *)
    mutable init_hi : int; (* arena slots [0, init_hi) are initialized *)
    mutable completed : int;
    mutable n_failures : int;
    mutable ready_count : int;
    mutable n_running : int;
    mutable pending_lo : int; (* consumed prefix of [arena.pending] *)
    mutable started : bool;
    mutable closed : bool; (* drained or abandoned *)
  }

  let create ?(seed = 0) ?(max_attempts = max_int) ?(failures = never)
      ?(tracer = Tracer.null) ?(registry = Moldable_obs.Registry.null) ?arena
      ?(lean = false) ?(capacity = 0) ~p policy =
    if max_attempts < 1 then
      invalid_arg "Sim_core.Stepper.create: max_attempts must be >= 1";
    if capacity < 0 then
      invalid_arg "Sim_core.Stepper.create: capacity must be >= 0";
    let traced = Tracer.enabled tracer in
    let a =
      match arena with
      | Some a when not a.Arena.in_use -> a
      | Some _ | None -> Arena.create ()
    in
    a.Arena.in_use <- true;
    (try Arena.ensure a ~p ~n:capacity
     with e ->
       a.Arena.in_use <- false;
       raise e);
    Event_queue.clear a.Arena.events;
    Growbuf.I.clear a.Arena.edge_to;
    Growbuf.I.clear a.Arena.edge_next;
    Growbuf.I.clear a.Arena.pending;
    Growbuf.I.clear a.Arena.pl_ints;
    Growbuf.F.clear a.Arena.pl_floats;
    Growbuf.A.clear a.Arena.pl_procs;
    Growbuf.F.clear a.Arena.tr_times;
    Growbuf.I.clear a.Arena.tr_a;
    Growbuf.I.clear a.Arena.tr_b;
    Growbuf.I.clear a.Arena.at_ints;
    Growbuf.F.clear a.Arena.at_floats;
    Growbuf.A.clear a.Arena.at_procs;
    Growbuf.F.clear a.Arena.qd_times;
    Growbuf.I.clear a.Arena.qd_depths;
    {
      policy;
      p;
      lean;
      recording = not lean;
      traced;
      tracer;
      registry;
      failures;
      max_attempts;
      rng = Rng.create seed;
      arena = a;
      platform = Option.get a.Arena.platform;
      events = a.Arena.events;
      recycle_ok = lean && not traced;
      counters = Metrics.make_counters ();
      ms = Array.make 1 0.;
      now_cell = Array.make 1 0.;
      n = 0;
      init_hi = 0;
      completed = 0;
      n_failures = 0;
      ready_count = 0;
      n_running = 0;
      pending_lo = 0;
      started = false;
      closed = false;
    }

  (* Grow (contents-preserving) and initialize arena slots up to [j]: an
     admission touches its own slot and, through forward dependency
     references, possibly slots of tasks not yet admitted. *)
  let init_through st j =
    let a = st.arena in
    if j >= a.Arena.cap then Arena.grow a ~n:(j + 1);
    if j >= st.init_hi then begin
      let state = a.Arena.state
      and indeg = a.Arena.indeg
      and attempt_no = a.Arena.attempt_no
      and succ_first = a.Arena.succ_first
      and succ_last = a.Arena.succ_last
      and rel = a.Arena.rel in
      for k = st.init_hi to j do
        state.(k) <- st_unrevealed;
        indeg.(k) <- 0;
        attempt_no.(k) <- 0;
        succ_first.(k) <- -1;
        succ_last.(k) <- -1;
        rel.(k) <- 0.
      done;
      if st.recording then begin
        let first_ready = a.Arena.first_ready
        and first_start = a.Arena.first_start
        and service = a.Arena.service in
        for k = st.init_hi to j do
          first_ready.(k) <- nan;
          first_start.(k) <- nan;
          service.(k) <- 0.
        done
      end;
      st.init_hi <- j + 1
    end

  (* Validate a whole dependency list before mutating anything, so a
     rejected admission leaves the stepper untouched.  Top-level (not
     nested in [admit]) so the admission hot path builds no closures. *)
  let rec check_deps i prev hi = function
    | [] -> hi
    | d :: rest ->
      if d <= prev then
        invalid_arg
          "Sim_core.Stepper.admit_task: deps must be strictly increasing \
           task ids";
      if d = i then
        invalid_arg
          "Sim_core.Stepper.admit_task: a task cannot depend on itself";
      check_deps i d (if d > hi then d else hi) rest

  (* Register the precedence edges of task [i].  A dependency on an
     already-completed task is satisfied and registers nothing; every other
     dependency appends an edge to its predecessor's intrusive successor
     list, which therefore stays ascending in successor id (admissions
     are).  Forward references (to tasks not yet admitted) are allowed:
     the slot is initialized by [init_through] and the edge fires when the
     predecessor eventually completes. *)
  let rec register_deps a i indeg = function
    | [] -> indeg
    | d :: rest ->
      if a.Arena.state.(d) = st_done then register_deps a i indeg rest
      else begin
        let e = Growbuf.I.length a.Arena.edge_to in
        Growbuf.I.push a.Arena.edge_to i;
        Growbuf.I.push a.Arena.edge_next (-1);
        (let last = a.Arena.succ_last.(d) in
         if last >= 0 then Growbuf.I.set a.Arena.edge_next last e
         else a.Arena.succ_first.(d) <- e);
        a.Arena.succ_last.(d) <- e;
        register_deps a i (indeg + 1) rest
      end

  (* The allocation-free admission path [run] loops over (plain arguments:
     an optional-argument call would box a [Some] per task). *)
  let admit st rel deps task =
    if st.closed then
      invalid_arg "Sim_core.Stepper.admit_task: the stepper is closed";
    if not (Float.is_finite rel) || rel < 0. then
      invalid_arg
        "Sim_core.Stepper.admit_task: release time must be finite and >= 0";
    let i = st.n in
    if task.Task.id <> i then
      invalid_arg
        (Printf.sprintf
           "Sim_core.Stepper.admit_task: task id %d does not match its \
            admission index %d"
           task.Task.id i);
    let hi = check_deps i (-1) i deps in
    init_through st hi;
    let a = st.arena in
    a.Arena.tasks.(i) <- task;
    a.Arena.rel.(i) <- rel;
    let indeg = register_deps a i 0 deps in
    a.Arena.indeg.(i) <- indeg;
    st.n <- i + 1;
    if indeg = 0 then Growbuf.I.push a.Arena.pending i;
    i

  let admit_task st ?release_time ?(deps = []) task =
    admit st
      (match release_time with None -> 0. | Some r -> r)
      deps task

  let record_ev st now kind arg1 arg2 =
    let a = st.arena in
    Growbuf.F.push a.Arena.tr_times now;
    Growbuf.I.push a.Arena.tr_a (kind lor (arg1 lsl 2));
    Growbuf.I.push a.Arena.tr_b arg2

  let fail st fmt =
    Printf.ksprintf
      (fun s -> raise (Policy_error (st.policy.name ^ ": " ^ s)))
      fmt

  let reveal st now i =
    let a = st.arena in
    a.Arena.state.(i) <- st_available;
    st.ready_count <- st.ready_count + 1;
    if st.recording then begin
      if Float.is_nan a.Arena.first_ready.(i) then
        a.Arena.first_ready.(i) <- now;
      record_ev st now ev_ready i 0
    end;
    if st.traced then
      Tracer.record_instant st.tracer ~time:now ~kind:Tracer.Ready ~subject:i;
    st.policy.on_ready ~now a.Arena.tasks.(i)

  (* A task whose precedence constraints are satisfied at [now] is revealed
     immediately, or scheduled as a future Reveal if not yet released. *)
  let reveal_or_defer st now i =
    let r = st.arena.Arena.rel.(i) in
    if r <= now then reveal st now i
    else begin
      if st.traced then
        Tracer.record_instant st.tracer ~time:now ~kind:Tracer.Deferred
          ~subject:i;
      Event_queue.add st.events ~time:r (enc_reveal i)
    end

  let rec launch_round_untimed st now =
    let free = Platform.free_count st.platform in
    if free > 0 then
      match st.policy.next_launch ~now ~free with
      | None ->
        st.counters.Metrics.stall_checks <-
          st.counters.Metrics.stall_checks + 1;
        if st.traced && st.ready_count > 0 then
          Tracer.record_instant st.tracer ~time:now ~kind:Tracer.Stall
            ~subject:(-1)
      | Some (tid, nprocs) ->
        let a = st.arena in
        if tid < 0 || tid >= st.n then fail st "launched unknown task %d" tid;
        (if a.Arena.state.(tid) <> st_available then
           if a.Arena.state.(tid) = st_unrevealed then
             fail st "launched unrevealed task %d" tid
           else if a.Arena.state.(tid) = st_running then
             fail st "launched running task %d" tid
           else fail st "launched completed task %d" tid);
        if nprocs < 1 then fail st "task %d launched on %d procs" tid nprocs;
        if nprocs > free then
          fail st "task %d needs %d procs but only %d are free" tid nprocs
            free;
        (* The attempt cap is checked before any resource is acquired or
           queued, so a violation leaves the platform and event queue
           untouched. *)
        if a.Arena.attempt_no.(tid) >= st.max_attempts then
          failwith
            (Printf.sprintf
               "Sim_core.run: task %d reached the attempt limit (%d \
                attempts, all failed) under failure model %s"
               tid st.max_attempts st.failures.model_name);
        let procs = Platform.acquire st.platform nprocs in
        let duration = Task.time a.Arena.tasks.(tid) nprocs in
        a.Arena.state.(tid) <- st_running;
        st.ready_count <- st.ready_count - 1;
        st.n_running <- st.n_running + 1;
        a.Arena.attempt_no.(tid) <- a.Arena.attempt_no.(tid) + 1;
        st.counters.Metrics.launches <- st.counters.Metrics.launches + 1;
        if st.recording then begin
          if Float.is_nan a.Arena.first_start.(tid) then
            a.Arena.first_start.(tid) <- now;
          record_ev st now ev_start tid nprocs
        end;
        a.Arena.run_start.(tid) <- now;
        a.Arena.run_procs.(tid) <- procs;
        Event_queue.add st.events ~time:(now +. duration) (enc_complete tid);
        launch_round_untimed st now

  let launch_round st now =
    if st.traced then
      Tracer.timed st.tracer "launch-round" (fun () ->
          launch_round_untimed st now)
    else launch_round_untimed st now

  let sample_depth st now =
    if st.recording then begin
      Growbuf.F.push st.arena.Arena.qd_times now;
      Growbuf.I.push st.arena.Arena.qd_depths st.ready_count
    end

  let rec unlock_edges st now e =
    if e >= 0 then begin
      let a = st.arena in
      let j = Growbuf.I.get a.Arena.edge_to e in
      a.Arena.indeg.(j) <- a.Arena.indeg.(j) - 1;
      if a.Arena.indeg.(j) = 0 then reveal_or_defer st now j;
      unlock_edges st now (Growbuf.I.get a.Arena.edge_next e)
    end

  (* One scheduling instant, in the same three phases as the reference
     loop.  Precondition: [Event_queue.pop_batch] just returned [blen > 0]. *)
  let process_batch st blen =
    let events = st.events in
    let now = Event_queue.batch_time events in
    st.now_cell.(0) <- now;
    let a = st.arena in
    st.counters.Metrics.batches <- st.counters.Metrics.batches + 1;
    st.counters.Metrics.events <- st.counters.Metrics.events + blen;
    let outcomes = Arena.outcomes_for a blen in
    let attempt_no = a.Arena.attempt_no
    and state = a.Arena.state
    and run_start = a.Arena.run_start
    and run_procs = a.Arena.run_procs
    and service = a.Arena.service in
    (* Phase 1 — completions: release the processors of every attempt in
       the batch and classify it (consuming the failure RNG in batch
       order), so the policy later sees the full free count of this
       instant. *)
    for k = 0 to blen - 1 do
      let payload = Event_queue.batch_payload events k in
      if payload land 1 = 1 then begin
        let tid = payload lsr 1 in
        let stamp = Event_queue.batch_stamp events k in
        let attempt = attempt_no.(tid) in
        let start = run_start.(tid) in
        let procs = run_procs.(tid) in
        let failed = st.failures.fails st.rng ~task_id:tid ~attempt in
        st.n_running <- st.n_running - 1;
        if st.recording then begin
          (* Attempt records report the batch instant as their finish (the
             instant the attempt's outcome became known); the schedule
             keeps the exact stamp. *)
          Growbuf.I.push a.Arena.at_ints tid;
          Growbuf.I.push a.Arena.at_ints attempt;
          Growbuf.I.push a.Arena.at_ints
            ((Array.length procs lsl 1) lor Bool.to_int failed);
          Growbuf.F.push a.Arena.at_floats start;
          Growbuf.F.push a.Arena.at_floats now;
          Growbuf.A.push a.Arena.at_procs procs;
          service.(tid) <- service.(tid) +. (now -. start)
        end;
        if st.traced then
          Tracer.record_span st.tracer ~task_id:tid ~attempt ~t0:start
            ~t1:now ~procs ~failed;
        if now > st.ms.(0) then st.ms.(0) <- now;
        if failed then begin
          if st.recycle_ok then Platform.recycle st.platform procs
          else Platform.release st.platform procs;
          st.n_failures <- st.n_failures + 1;
          st.counters.Metrics.retries <- st.counters.Metrics.retries + 1;
          if st.recording then record_ev st now ev_failed tid attempt;
          outcomes.(k) <- 1
        end
        else begin
          Platform.release st.platform procs;
          state.(tid) <- st_done;
          st.completed <- st.completed + 1;
          if st.recording then record_ev st now ev_finish tid 0;
          Growbuf.I.push a.Arena.pl_ints tid;
          Growbuf.F.push a.Arena.pl_floats start;
          Growbuf.F.push a.Arena.pl_floats stamp;
          Growbuf.A.push a.Arena.pl_procs procs;
          outcomes.(k) <- 0
        end
      end
      else outcomes.(k) <- 2
    done;
    (* Phase 2 — reveals, in batch order: failed attempts go back to the
       policy (a stateless allocator naturally re-allocates them) and
       release-time reveals fire. *)
    for k = 0 to blen - 1 do
      if outcomes.(k) <> 0 then
        reveal st now (Event_queue.batch_payload events k lsr 1)
    done;
    (* Phase 3 — precedence: successors unlocked by this batch's successful
       completions, still in batch order. *)
    for k = 0 to blen - 1 do
      if outcomes.(k) = 0 then
        unlock_edges st now
          a.Arena.succ_first.(Event_queue.batch_payload events k lsr 1)
    done;
    launch_round st now;
    sample_depth st now

  (* Reveal every admitted-but-unprocessed dependency-free task (in
     admission order), then run a launch round at the current instant —
     exactly the source flush the batch run performs at time 0. *)
  let flush_pending_and_launch st =
    let a = st.arena in
    let len = Growbuf.I.length a.Arena.pending in
    let now = st.now_cell.(0) in
    let i = ref st.pending_lo in
    st.pending_lo <- len;
    while !i < len do
      reveal_or_defer st now (Growbuf.I.get a.Arena.pending !i);
      incr i
    done;
    launch_round st now;
    sample_depth st now

  let start st =
    if not st.started then begin
      st.started <- true;
      flush_pending_and_launch st
    end

  (* After the clock has started, a flush only happens when a new
     dependency-free admission is waiting: batch-equivalent drives never
     trigger it, so the launch-round/depth-sample stream is untouched. *)
  let flush_if_pending st =
    if st.pending_lo < Growbuf.I.length st.arena.Arena.pending then
      flush_pending_and_launch st

  let advance st ~until =
    if st.closed then
      invalid_arg "Sim_core.Stepper.advance: the stepper is closed";
    if Float.is_nan until then
      invalid_arg "Sim_core.Stepper.advance: until must not be NaN";
    start st;
    flush_if_pending st;
    let batches = ref 0 in
    let rec loop () =
      match Event_queue.next_time st.events with
      | Some t when t <= until ->
        let blen = Event_queue.pop_batch st.events in
        if blen > 0 then begin
          process_batch st blen;
          incr batches;
          loop ()
        end
      | Some _ | None -> ()
    in
    loop ();
    if until > st.now_cell.(0) then st.now_cell.(0) <- until;
    !batches

  let finalize st =
    let a = st.arena in
    let n = st.n in
    let attempts =
      if st.lean then []
      else begin
        let m = Growbuf.A.length a.Arena.at_procs in
        let lst = ref [] in
        for k = m - 1 downto 0 do
          let packed = Growbuf.I.get a.Arena.at_ints ((3 * k) + 2) in
          lst :=
            {
              task_id = Growbuf.I.get a.Arena.at_ints (3 * k);
              attempt = Growbuf.I.get a.Arena.at_ints ((3 * k) + 1);
              start = Growbuf.F.get a.Arena.at_floats (2 * k);
              finish = Growbuf.F.get a.Arena.at_floats ((2 * k) + 1);
              nprocs = packed lsr 1;
              procs = Growbuf.A.get a.Arena.at_procs k;
              failed = packed land 1 = 1;
            }
            :: !lst
        done;
        List.sort
          (fun x y ->
            match Float.compare x.start y.start with
            | 0 -> (
              match Int.compare x.task_id y.task_id with
              | 0 -> Int.compare x.attempt y.attempt
              | c -> c)
            | c -> c)
          !lst
      end
    in
    let builder = Schedule.builder ~p:st.p ~n in
    let m = Growbuf.A.length a.Arena.pl_procs in
    for k = 0 to m - 1 do
      let procs = Growbuf.A.get a.Arena.pl_procs k in
      Schedule.add builder
        {
          Schedule.task_id = Growbuf.I.get a.Arena.pl_ints k;
          start = Growbuf.F.get a.Arena.pl_floats (2 * k);
          finish = Growbuf.F.get a.Arena.pl_floats ((2 * k) + 1);
          nprocs = Array.length procs;
          procs;
        }
    done;
    let schedule = Schedule.finalize builder in
    let trace =
      if st.lean then []
      else begin
        let m = Growbuf.F.length a.Arena.tr_times in
        let lst = ref [] in
        for k = m - 1 downto 0 do
          let packed = Growbuf.I.get a.Arena.tr_a k in
          let arg1 = packed lsr 2 and b = Growbuf.I.get a.Arena.tr_b k in
          let ev =
            match packed land 3 with
            | 0 -> Ready arg1
            | 1 -> Start (arg1, b)
            | 2 -> Finish arg1
            | _ -> Failed (arg1, b)
          in
          lst := (Growbuf.F.get a.Arena.tr_times k, ev) :: !lst
        done;
        !lst
      end
    in
    let metrics =
      if st.lean then
        Metrics.build ~p:st.p ~counters:st.counters ~queue_depth:[]
          ~tasks:[||] ~spans:[]
      else begin
        let first_ready = a.Arena.first_ready
        and first_start = a.Arena.first_start
        and service = a.Arena.service
        and attempt_no = a.Arena.attempt_no in
        let tasks =
          Array.init n (fun i ->
              {
                Metrics.task_id = i;
                ready = first_ready.(i);
                start = first_start.(i);
                finish = (Schedule.placement schedule i).Schedule.finish;
                wait = first_start.(i) -. first_ready.(i);
                service = service.(i);
                attempts = attempt_no.(i);
              })
        in
        let queue_depth =
          List.init (Growbuf.F.length a.Arena.qd_times) (fun k ->
              ( Growbuf.F.get a.Arena.qd_times k,
                Growbuf.I.get a.Arena.qd_depths k ))
        in
        let spans =
          List.map (fun at -> (at.start, at.finish, at.nprocs)) attempts
        in
        Metrics.build ~p:st.p ~counters:st.counters ~queue_depth ~tasks
          ~spans
      end
    in
    (* Publish the run counters to an attached telemetry registry in one
       shot: the totals are identical to incrementing per event, and the
       hot loop stays untouched (a [Registry.null] run skips this block
       entirely). *)
    (let module R = Moldable_obs.Registry in
     if R.enabled st.registry then begin
       let c name help v =
         R.incr_by (R.counter st.registry ~name ~help) (float_of_int v)
       in
       c "moldable_sim_events" "Simulation events processed"
         st.counters.Metrics.events;
       c "moldable_sim_batches" "Simultaneous-completion batches processed"
         st.counters.Metrics.batches;
       c "moldable_sim_launches" "Task attempts launched"
         st.counters.Metrics.launches;
       c "moldable_sim_retries" "Failed attempts re-queued for retry"
         st.counters.Metrics.retries;
       c "moldable_sim_stall_checks"
         "Launch rounds the policy ended by declining to launch"
         st.counters.Metrics.stall_checks;
       c "moldable_sim_runs" "Completed simulation runs" 1
     end);
    {
      schedule;
      trace;
      attempts;
      makespan = st.ms.(0);
      n_attempts = st.counters.Metrics.launches;
      n_failures = st.n_failures;
      metrics;
    }

  let drain st =
    if st.closed then
      invalid_arg "Sim_core.Stepper.drain: the stepper is closed";
    Fun.protect
      ~finally:(fun () ->
        st.closed <- true;
        st.arena.Arena.in_use <- false)
      (fun () ->
        start st;
        flush_if_pending st;
        let n = st.n in
        let event_loop () =
          while st.completed < n do
            let blen = Event_queue.pop_batch st.events in
            if blen = 0 then
              fail st
                "stalled: %d of %d tasks completed but nothing is running"
                st.completed n
            else process_batch st blen
          done
        in
        if st.traced then Tracer.timed st.tracer "event-loop" event_loop
        else event_loop ();
        finalize st)

  let abandon st =
    if not st.closed then begin
      st.closed <- true;
      st.arena.Arena.in_use <- false
    end

  (* ------------------------------------------------------- introspection *)

  let now st = st.now_cell.(0)
  let started st = st.started
  let closed st = st.closed
  let admitted st = st.n
  let completed st = st.completed
  let ready st = st.ready_count
  let running st = st.n_running
  let free_procs st = Platform.free_count st.platform
  let makespan_so_far st = st.ms.(0)
  let next_event_time st = Event_queue.next_time st.events
  let n_events st = Growbuf.F.length st.arena.Arena.tr_times

  let events_from st k0 =
    let a = st.arena in
    let m = Growbuf.F.length a.Arena.tr_times in
    let lst = ref [] in
    for k = m - 1 downto max 0 k0 do
      let packed = Growbuf.I.get a.Arena.tr_a k in
      let arg1 = packed lsr 2 and b = Growbuf.I.get a.Arena.tr_b k in
      let ev =
        match packed land 3 with
        | 0 -> Ready arg1
        | 1 -> Start (arg1, b)
        | 2 -> Finish arg1
        | _ -> Failed (arg1, b)
      in
      lst := (Growbuf.F.get a.Arena.tr_times k, ev) :: !lst
    done;
    !lst
end

let run ?release_times ?(seed = 0) ?(max_attempts = max_int)
    ?(failures = never) ?(tracer = Tracer.null)
    ?(registry = Moldable_obs.Registry.null) ?arena ?(lean = false) ~p policy
    dag =
  let n = Dag.n dag in
  validate_inputs ?release_times ~max_attempts ~n ();
  let st =
    Stepper.create ~seed ~max_attempts ~failures ~tracer ~registry ?arena
      ~lean ~capacity:n ~p policy
  in
  match
    (match release_times with
    | None ->
      for i = 0 to n - 1 do
        ignore
          (Stepper.admit st 0. (Dag.predecessors dag i) (Dag.task dag i)
            : int)
      done
    | Some r ->
      for i = 0 to n - 1 do
        ignore
          (Stepper.admit st r.(i) (Dag.predecessors dag i) (Dag.task dag i)
            : int)
      done);
    Stepper.drain st
  with
  | result -> result
  | exception e ->
    Stepper.abandon st;
    raise e

(* ----------------------------------------------------- reference event loop *)

(* The pre-arena event loop, kept verbatim as the differential oracle for
   the allocation-lean [run] above (the same pattern as
   [Online_scheduler.policy_reference]): boxed event records on a
   closure-compared [Pqueue], cons-list trace/attempts/depth-sample
   recording, a fresh platform and fresh arrays per run.  The qcheck
   properties in test/test_sim_core.ml pin [run] to it across priority
   rules, allocators, failure models and release times, and bench section
   [alloc_lean] measures the allocation delta between the two. *)

module Ref_queue = struct
  type 'a item = { time : float; seq : int; payload : 'a }
  type 'a t = { heap : 'a item Pqueue.t; mutable next_seq : int }

  let cmp a b =
    match Float.compare a.time b.time with
    | 0 -> Int.compare a.seq b.seq
    | c -> c

  let create () = { heap = Pqueue.create ~cmp; next_seq = 0 }

  let add t ~time payload =
    if not (Float.is_finite time) then
      invalid_arg "Event_queue.add: time must be finite";
    Pqueue.push t.heap { time; seq = t.next_seq; payload };
    t.next_seq <- t.next_seq + 1

  let pop t =
    Option.map (fun i -> (i.time, i.payload)) (Pqueue.pop t.heap)

  let pop_simultaneous t =
    match pop t with
    | None -> None
    | Some (time, first) ->
      let rec gather latest acc =
        match Pqueue.peek t.heap with
        | Some i when Fcmp.approx ~eps:Event_queue.batch_eps i.time time ->
          let i = Pqueue.pop_exn t.heap in
          gather i.time (i.payload :: acc)
        | Some _ | None -> (latest, List.rev acc)
      in
      let latest, batch = gather time [ first ] in
      Some (latest, batch)
end

type ref_state = Unrevealed | Available | Running | Done

type ref_event =
  | RComplete of { tid : int; attempt : int; start : float; finish : float;
                   procs : int array }
  | RReveal of int

let run_reference ?release_times ?(seed = 0) ?(max_attempts = max_int)
    ?(failures = never) ?(tracer = Tracer.null)
    ?(registry = Moldable_obs.Registry.null) ~p policy dag =
  let n = Dag.n dag in
  let traced = Tracer.enabled tracer in
  validate_inputs ?release_times ~max_attempts ~n ();
  let release i =
    match release_times with None -> 0. | Some r -> r.(i)
  in
  let rng = Rng.create seed in
  let platform = Platform.create p in
  let builder = Schedule.builder ~p ~n in
  let events = Ref_queue.create () in
  let state = Array.make n Unrevealed in
  let indeg = Array.init n (Dag.in_degree dag) in
  let attempt_no = Array.make n 0 in
  let completed = ref 0 in
  let trace = ref [] in
  let attempts = ref [] in
  let n_failures = ref 0 in
  let counters = Metrics.make_counters () in
  let ready_count = ref 0 in
  let depth_samples = ref [] in
  let first_ready = Array.make n nan in
  let first_start = Array.make n nan in
  let service = Array.make n 0. in
  let record now ev = trace := (now, ev) :: !trace in
  let fail fmt =
    Printf.ksprintf
      (fun s -> raise (Policy_error (policy.name ^ ": " ^ s)))
      fmt
  in
  let reveal now i =
    state.(i) <- Available;
    incr ready_count;
    if Float.is_nan first_ready.(i) then first_ready.(i) <- now;
    record now (Ready i);
    if traced then
      Tracer.record_instant tracer ~time:now ~kind:Tracer.Ready ~subject:i;
    policy.on_ready ~now (Dag.task dag i)
  in
  let reveal_or_defer now i =
    if release i <= now then reveal now i
    else begin
      if traced then
        Tracer.record_instant tracer ~time:now ~kind:Tracer.Deferred
          ~subject:i;
      Ref_queue.add events ~time:(release i) (RReveal i)
    end
  in
  let launch_round_untimed now =
    let rec loop () =
      let free = Platform.free_count platform in
      if free > 0 then
        match policy.next_launch ~now ~free with
        | None ->
          counters.Metrics.stall_checks <- counters.Metrics.stall_checks + 1;
          if traced && !ready_count > 0 then
            Tracer.record_instant tracer ~time:now ~kind:Tracer.Stall
              ~subject:(-1)
        | Some (tid, nprocs) ->
          if tid < 0 || tid >= n then fail "launched unknown task %d" tid;
          (match state.(tid) with
          | Available -> ()
          | Unrevealed -> fail "launched unrevealed task %d" tid
          | Running -> fail "launched running task %d" tid
          | Done -> fail "launched completed task %d" tid);
          if nprocs < 1 then fail "task %d launched on %d procs" tid nprocs;
          if nprocs > free then
            fail "task %d needs %d procs but only %d are free" tid nprocs free;
          if attempt_no.(tid) >= max_attempts then
            failwith
              (Printf.sprintf
                 "Sim_core.run: task %d reached the attempt limit (%d \
                  attempts, all failed) under failure model %s"
                 tid max_attempts failures.model_name);
          let procs = Platform.acquire platform nprocs in
          let duration = Task.time (Dag.task dag tid) nprocs in
          state.(tid) <- Running;
          decr ready_count;
          attempt_no.(tid) <- attempt_no.(tid) + 1;
          if Float.is_nan first_start.(tid) then first_start.(tid) <- now;
          counters.Metrics.launches <- counters.Metrics.launches + 1;
          record now (Start (tid, nprocs));
          Ref_queue.add events
            ~time:(now +. duration)
            (RComplete
               { tid; attempt = attempt_no.(tid); start = now;
                 finish = now +. duration; procs });
          loop ()
    in
    loop ()
  in
  let launch_round now =
    if traced then
      Tracer.timed tracer "launch-round" (fun () -> launch_round_untimed now)
    else launch_round_untimed now
  in
  let sample_depth now =
    depth_samples := (now, !ready_count) :: !depth_samples
  in
  List.iter (reveal_or_defer 0.) (Dag.sources dag);
  launch_round 0.;
  sample_depth 0.;
  let event_loop () =
    while !completed < n do
      match Ref_queue.pop_simultaneous events with
      | None ->
        fail "stalled: %d of %d tasks completed but nothing is running"
          !completed n
      | Some (now, batch) ->
        counters.Metrics.batches <- counters.Metrics.batches + 1;
        counters.Metrics.events <- counters.Metrics.events + List.length batch;
        let outcomes =
          List.map
            (function
              | RComplete { tid; attempt; start; finish; procs } ->
                Platform.release platform procs;
                let failed = failures.fails rng ~task_id:tid ~attempt in
                attempts :=
                  { task_id = tid; attempt; start; finish = now;
                    nprocs = Array.length procs; procs; failed }
                  :: !attempts;
                if traced then
                  Tracer.record_span tracer ~task_id:tid ~attempt ~t0:start
                    ~t1:now ~procs ~failed;
                service.(tid) <- service.(tid) +. (now -. start);
                if failed then begin
                  incr n_failures;
                  counters.Metrics.retries <- counters.Metrics.retries + 1;
                  record now (Failed (tid, attempt));
                  `Failed tid
                end
                else begin
                  state.(tid) <- Done;
                  incr completed;
                  record now (Finish tid);
                  Schedule.add builder
                    { Schedule.task_id = tid; start; finish;
                      nprocs = Array.length procs; procs };
                  `Succeeded tid
                end
              | RReveal i -> `Revealed i)
            batch
        in
        List.iter
          (function
            | `Failed tid -> reveal now tid
            | `Revealed i -> reveal now i
            | `Succeeded _ -> ())
          outcomes;
        List.iter
          (function
            | `Succeeded tid ->
              List.iter
                (fun j ->
                  indeg.(j) <- indeg.(j) - 1;
                  if indeg.(j) = 0 then reveal_or_defer now j)
                (Dag.successors dag tid)
            | `Failed _ | `Revealed _ -> ())
          outcomes;
        launch_round now;
        sample_depth now
    done
  in
  if traced then Tracer.timed tracer "event-loop" event_loop
  else event_loop ();
  let attempts =
    List.sort
      (fun x y ->
        match Float.compare x.start y.start with
        | 0 -> (
          match Int.compare x.task_id y.task_id with
          | 0 -> Int.compare x.attempt y.attempt
          | c -> c)
        | c -> c)
      !attempts
  in
  let schedule = Schedule.finalize builder in
  let makespan =
    List.fold_left (fun acc at -> Float.max acc at.finish) 0. attempts
  in
  let tasks =
    Array.init n (fun i ->
        {
          Metrics.task_id = i;
          ready = first_ready.(i);
          start = first_start.(i);
          finish = (Schedule.placement schedule i).Schedule.finish;
          wait = first_start.(i) -. first_ready.(i);
          service = service.(i);
          attempts = attempt_no.(i);
        })
  in
  let spans = List.map (fun at -> (at.start, at.finish, at.nprocs)) attempts in
  let metrics =
    Metrics.build ~p ~counters ~queue_depth:(List.rev !depth_samples) ~tasks
      ~spans
  in
  (let module R = Moldable_obs.Registry in
   if R.enabled registry then begin
     let c name help v =
       R.incr_by (R.counter registry ~name ~help) (float_of_int v)
     in
     c "moldable_sim_events" "Simulation events processed"
       counters.Metrics.events;
     c "moldable_sim_batches" "Simultaneous-completion batches processed"
       counters.Metrics.batches;
     c "moldable_sim_launches" "Task attempts launched"
       counters.Metrics.launches;
     c "moldable_sim_retries" "Failed attempts re-queued for retry"
       counters.Metrics.retries;
     c "moldable_sim_stall_checks"
       "Launch rounds the policy ended by declining to launch"
       counters.Metrics.stall_checks;
     c "moldable_sim_runs" "Completed simulation runs" 1
   end);
  {
    schedule;
    trace = List.rev !trace;
    attempts;
    makespan;
    n_attempts = List.length attempts;
    n_failures = !n_failures;
    metrics;
  }
