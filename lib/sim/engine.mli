(** Online discrete-event scheduling engine (failure-free instantiation of
    {!Sim_core}).

    The engine owns the clock, the platform and the precedence bookkeeping,
    and reveals the graph to the scheduling policy exactly as the online
    model of Section 3.1 prescribes: a task (and its speedup parameters)
    becomes visible only once all its predecessors have completed.  The
    policy never sees the [Dag.t].

    At time 0 and at every set of simultaneous task completions the engine
    (1) reveals newly available tasks via [on_ready], then (2) repeatedly
    asks [next_launch] for a task to start right now, until the policy
    declines.  This is precisely the event structure of Algorithm 1.

    Since the engine unification, this module is a thin wrapper over
    {!Sim_core.run} with the {!Sim_core.never} failure model: the event loop
    lives in one place and {!Failure_engine} shares it. *)

open Moldable_model
open Moldable_graph

type policy = Sim_core.policy = {
  name : string;
  on_ready : now:float -> Task.t -> unit;
      (** A task became available; its parameters are now visible. *)
  next_launch : now:float -> free:int -> (int * int) option;
      (** [Some (task_id, nprocs)] to start that task immediately on
          [nprocs] processors, or [None] to wait for the next event.  Called
          again after each launch with the updated free count. *)
}

exception Policy_error of string
(** The policy launched a task that is not ready, exceeded the free
    processor count, or stalled with ready tasks and no running work.
    (The same exception as {!Sim_core.Policy_error}.) *)

type event =
  | Ready of int
  | Start of int * int  (** task id, allocation *)
  | Finish of int

type result = {
  schedule : Schedule.t;
  trace : (float * event) list;  (** Chronological. *)
  metrics : Metrics.t;  (** Run counters, utilization and queue timelines. *)
}

val run :
  ?release_times:float array ->
  ?registry:Moldable_obs.Registry.t ->
  ?arena:Sim_core.Arena.t ->
  ?lean:bool ->
  p:int ->
  policy ->
  Dag.t ->
  result
(** Simulates the policy on the graph with [p] processors.

    [release_times], when given (indexed by task id, non-negative, length
    [Dag.n]), delays the reveal of each task: a task becomes available at
    the maximum of its release time and the completion of its last
    predecessor.  With an edgeless graph this is exactly the online
    independent-tasks-over-time model the paper's conclusion mentions.

    [registry] (default {!Moldable_obs.Registry.null}) receives the run
    counters; see {!Sim_core.run}.  [arena] and [lean] are forwarded to
    {!Sim_core.run}: an arena reuses per-run storage across runs, and a
    lean run skips trace/metric recording (the result's [trace] is [[]])
    while producing the identical [schedule].

    @raise Policy_error as documented above.
    @raise Invalid_argument on ill-formed release times. *)

val makespan : p:int -> policy -> Dag.t -> float
(** Convenience: [makespan] of the schedule of {!run} (runs lean). *)
