type placement = {
  task_id : int;
  start : float;
  finish : float;
  nprocs : int;
  procs : int array;
}

type t = { p : int; by_task : placement array }

(* Empty-slot sentinel: no real placement carries [nprocs = 0] ([add]
   rejects it), and physical equality makes the test unambiguous.  Storing
   placements directly instead of ['a option] keeps [add] — once per
   completed task on the simulator's hot path — allocation-free. *)
let no_placement =
  { task_id = -1; start = 0.; finish = 0.; nprocs = 0; procs = [||] }

type builder = {
  bp : int;
  slots : placement array;
  mutable added : int;
}

let builder ~p ~n =
  if p < 1 then invalid_arg "Schedule.builder: p must be >= 1";
  if n < 0 then invalid_arg "Schedule.builder: n must be >= 0";
  { bp = p; slots = Array.make n no_placement; added = 0 }

let well_formed_procs p pl =
  Array.length pl.procs = pl.nprocs
  && pl.nprocs >= 1
  &&
  let ok = ref true in
  for k = 0 to Array.length pl.procs - 1 do
    let i = pl.procs.(k) in
    if i < 0 || i >= p then ok := false;
    if k > 0 && pl.procs.(k - 1) >= i then ok := false
  done;
  !ok

let add b pl =
  if pl.task_id < 0 || pl.task_id >= Array.length b.slots then
    invalid_arg
      (Printf.sprintf "Schedule.add: task id %d out of range" pl.task_id);
  if b.slots.(pl.task_id) != no_placement then
    invalid_arg
      (Printf.sprintf "Schedule.add: task %d placed twice" pl.task_id);
  if pl.start < 0. || pl.finish < pl.start then
    invalid_arg
      (Printf.sprintf "Schedule.add: task %d has an ill-formed time window"
         pl.task_id);
  if not (well_formed_procs b.bp pl) then
    invalid_arg
      (Printf.sprintf "Schedule.add: task %d has an ill-formed processor set"
         pl.task_id);
  b.slots.(pl.task_id) <- pl;
  b.added <- b.added + 1

let finalize b =
  let by_task =
    Array.mapi
      (fun i pl ->
        if pl == no_placement then
          invalid_arg
            (Printf.sprintf "Schedule.finalize: task %d was never placed" i)
        else pl)
      b.slots
  in
  { p = b.bp; by_task }

let p t = t.p
let n t = Array.length t.by_task

let makespan t =
  Array.fold_left (fun acc pl -> Float.max acc pl.finish) 0. t.by_task

let placement t i = t.by_task.(i)

let placements t =
  let l = Array.to_list t.by_task in
  List.sort
    (fun a b ->
      match Float.compare a.start b.start with
      | 0 -> Int.compare a.task_id b.task_id
      | c -> c)
    l

let utilization_steps t =
  (* Sweep: +nprocs at start, -nprocs at finish. *)
  let deltas =
    Array.to_list t.by_task
    |> List.concat_map (fun pl ->
           [ (pl.start, pl.nprocs); (pl.finish, -pl.nprocs) ])
    |> List.sort (fun (ta, _) (tb, _) -> Float.compare ta tb)
  in
  let rec sweep acc busy cursor = function
    | [] -> List.rev acc
    | (time, delta) :: rest ->
      let acc =
        if time > cursor then (cursor, time, busy) :: acc else acc
      in
      sweep acc (busy + delta) time rest
  in
  match deltas with
  | [] -> []
  | (t0, _) :: _ -> sweep [] 0 t0 deltas

let busy_area t =
  Array.fold_left
    (fun acc pl -> acc +. (float_of_int pl.nprocs *. (pl.finish -. pl.start)))
    0. t.by_task

let average_utilization t =
  let ms = makespan t in
  if ms <= 0. then 0. else busy_area t /. (float_of_int t.p *. ms)
