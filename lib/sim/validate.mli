(** Feasibility checker for schedules.

    Every schedule produced anywhere in this repository — by the online
    engine, by the hand-built offline schedules of the lower-bound proofs, or
    by tests — is passed through [check], which verifies, against the task
    graph it claims to schedule:

    - each task runs exactly once, for exactly [t_j(p_j)] time units
      (non-preemptive, no restarts);
    - precedence constraints: a task starts no earlier than the completion of
      each of its predecessors;
    - capacity: no processor id is used by two tasks simultaneously (which
      implies at most [P] processors are ever busy);
    - allocations are integers in [\[1, P\]] with well-formed processor sets.
*)

open Moldable_graph

val check :
  ?pool:Moldable_util.Pool.t -> dag:Dag.t -> Schedule.t ->
  (unit, string list) result
(** All violations found, or [Ok ()].  [pool] (default sequential) fans the
    per-task duration checks out over its domains; the error list is
    identical at any job count. *)

val check_exn : ?pool:Moldable_util.Pool.t -> dag:Dag.t -> Schedule.t -> unit
(** @raise Failure with the concatenated violations. *)

val respects_allocation_bound : dag:Dag.t -> Schedule.t -> bool
(** True when every allocation is at most the task's [p_max] (Equation (5)) —
    a property of reasonable algorithms (Section 3.2), not of feasibility. *)
