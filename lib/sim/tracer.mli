(** Decision-level structured tracing of a simulation run.

    A tracer records three event families alongside the aggregate
    {!Metrics}:

    - {e decision provenance} — one {!decision} per task, emitted by the
      scheduling policy when the allocator fixes the task's allocation:
      the Step-1 initial allocation [p_star] with its [alpha]/[beta]
      ratios, the [beta] budget [delta(mu)], the Step-2 cap [ceil(mu P)]
      and whether it bit, the final allocation, and how many feasibility
      candidates Step 1 probed.  Re-reveals after failed attempts do not
      duplicate the record: provenance is per task, not per attempt.
    - {e execution spans} — one {!span} per attempt (start, end, processor
      set, completed/failed), plus {!instant} markers for reveals, deferred
      releases and stalls.  {!Moldable_viz.Chrome_trace} renders these as a
      Chrome trace-event JSON for [chrome://tracing] / Perfetto.
    - {e self-profile} — named wall-clock timers ({!Moldable_util.Clock})
      charged by the event loop and the policy (event loop, launch rounds,
      task analysis, allocator, ready queue), so hot-path regressions are
      visible without an external profiler.

    Tracing is zero-cost when off: {!null} is permanently disabled, every
    recording entry point checks {!enabled} before allocating anything, and
    hot-path callers guard with [if Tracer.enabled t then ...] so a
    [Tracer.null] run performs no tracing work beyond one branch per
    hook. *)

open Moldable_util

type decision = {
  task_id : int;
  label : string;
  model : string;        (** Speedup family ({!Moldable_model.Speedup.kind_name}). *)
  p : int;               (** Platform size the decision was taken for. *)
  p_max : int;           (** Equation (5) maximum useful allocation. *)
  t_min : float;         (** Minimum execution time [t(p_max)]. *)
  a_min : float;         (** Minimum area. *)
  p_star : int;          (** Step-1 initial allocation. *)
  alpha : float;         (** [alpha(p_star) = a(p_star) / a_min]. *)
  beta : float;          (** [beta(p_star) = t(p_star) / t_min]. *)
  beta_budget : float;   (** [delta(mu)] bound on [beta]; [nan] when the
                             rule carries no feasibility budget. *)
  cap : int;             (** Step-2 ceiling ([ceil(mu P)]; [p] when the rule
                             has no cap). *)
  cap_applied : bool;    (** Whether the cap reduced [p_star]. *)
  final_alloc : int;     (** The allocation actually scheduled. *)
  alpha_final : float;   (** [alpha] at {!field-final_alloc}. *)
  beta_final : float;    (** [beta] at {!field-final_alloc}. *)
  candidates_scanned : int;
      (** Feasibility probes Step 1 evaluated (binary-search probes for
          monotonic models, [p_max] for the exhaustive Arbitrary scan; 0 for
          trivial rules). *)
}

type outcome = Completed | Failed

type span = {
  task_id : int;
  attempt : int;        (** 1-based. *)
  t0 : float;
  t1 : float;
  nprocs : int;
  procs : int array;    (** Ascending processor ids. *)
  outcome : outcome;
}

type instant_kind =
  | Ready     (** Task entered the ready queue (reveal or re-reveal). *)
  | Deferred  (** Task's reveal was postponed to its release time. *)
  | Stall     (** A launch round ended with ready tasks left waiting. *)

type instant = {
  time : float;
  kind : instant_kind;
  subject : int;  (** Task id; [-1] for {!Stall}. *)
}

type t

val null : t
(** The permanently disabled tracer (the default everywhere): recording is
    a no-op and allocates nothing. *)

val create : unit -> t
(** A fresh, enabled tracer with an empty {!Clock.t}. *)

val enabled : t -> bool

val clock : t -> Clock.t
(** The tracer's self-profile timer registry. *)

val timed : t -> string -> (unit -> 'a) -> 'a
(** [timed t name f] charges [f]'s wall-clock time to [name] when enabled,
    and is exactly [f ()] otherwise. *)

(** {1 Recording (no-ops on {!null})} *)

val record_decision : t -> decision -> unit
(** Keeps the {e first} decision per task id; later records (re-reveals
    after failures) are ignored. *)

val record_span :
  t ->
  task_id:int -> attempt:int -> t0:float -> t1:float -> procs:int array ->
  failed:bool -> unit

val record_instant : t -> time:float -> kind:instant_kind -> subject:int -> unit

(** {1 Querying} *)

val decisions : t -> decision list
(** Sorted by task id. *)

val decision_for : t -> int -> decision option
val spans : t -> span list
(** Sorted by [(t0, task_id, attempt)]. *)

val instants : t -> instant list
(** Chronological (recording order). *)

val n_spans : t -> int
val n_decisions : t -> int

val pp_decision : Format.formatter -> decision -> unit
(** Multi-line provenance dump of one decision (the [--explain] output). *)

val pp_profile : Format.formatter -> t -> unit
(** The self-profile section: one line per named timer. *)
