(** The unified online simulation core.

    One event loop drives every discrete-event simulation in this
    repository: graph reveal on precedence satisfaction, deferred reveals on
    release times, batched simultaneous completions (ulp-tolerant, see
    {!Event_queue.pop_simultaneous}), greedy launch rounds against the
    policy, and per-attempt fault injection with retry accounting.
    {!Engine} ([never] failures) and {!Failure_engine} are thin
    instantiations — the three hand-copied loops they used to carry had
    already drifted apart (release times, [Schedule.t] and traces existed
    only in one of them).

    The loop processes each scheduling instant in three phases so the
    policy always sees the full free count and ready set of the instant:
    (1) release the processors of every completion in the batch and
    classify it against the failure model, (2) reveal failed attempts and
    release-time reveals in batch order, then newly unblocked successors,
    (3) run a launch round until the policy declines or no processor is
    free.

    Every run is instrumented: see {!Metrics}. *)

open Moldable_util
open Moldable_model
open Moldable_graph

type policy = {
  name : string;
  on_ready : now:float -> Task.t -> unit;
      (** A task became available (first reveal, or re-reveal after a failed
          attempt); its parameters are now visible. *)
  next_launch : now:float -> free:int -> (int * int) option;
      (** [Some (task_id, nprocs)] to start that task immediately, or
          [None] to wait.  Called again after each launch with the updated
          free count. *)
}

exception Policy_error of string
(** The policy launched a task that is not ready, exceeded the free
    processor count, or stalled with ready tasks and no running work. *)

type failure_model = {
  model_name : string;
  fails : Rng.t -> task_id:int -> attempt:int -> bool;
      (** Decides whether the [attempt]-th execution (1-based) of the task
          fails.  Consulted once per completed attempt, in batch order, so
          runs with a fixed seed are reproducible. *)
}

val never : failure_model
(** No attempt ever fails (and the RNG is never consumed). *)

val bernoulli : q:float -> failure_model
(** Each attempt fails independently with probability [q] in [\[0, 1)]. *)

val at_most : k:int -> failure_model
(** Deterministic: the first [k] attempts of every task fail, the next
    succeeds — handy for exact makespan assertions in tests. *)

type event =
  | Ready of int        (** Task revealed (or re-revealed after a failure). *)
  | Start of int * int  (** Task id, allocation. *)
  | Finish of int       (** Successful completion. *)
  | Failed of int * int (** Task id, 1-based attempt that failed. *)

type attempt = {
  task_id : int;
  attempt : int;      (** 1-based attempt number. *)
  start : float;
  finish : float;     (** The batch instant at which the attempt ended. *)
  nprocs : int;
  procs : int array;
  failed : bool;
}

type result = {
  schedule : Schedule.t;
      (** One placement per task: its successful attempt. *)
  trace : (float * event) list;  (** Chronological.  Empty in lean mode. *)
  attempts : attempt list;
      (** Chronological (by start, then task id and attempt).  Empty in
          lean mode. *)
  makespan : float;
  n_attempts : int;
  n_failures : int;
  metrics : Metrics.t;
}

(** Reusable per-run storage: the event heap, per-task bookkeeping arrays,
    recording buffers and the platform (with its recycled segment pool),
    all sized to the (p, n) high-water mark of the runs that used the
    arena.  Passing the same arena to successive {!run}s makes the steady
    state of a sweep allocation-free outside the result values themselves.

    An arena is single-run at a time: if a run is asked to use an arena
    that is already in use (reentrancy through a policy callback, or
    sharing across domains), it silently falls back to a private fresh
    arena, so correctness never depends on arena discipline. *)
module Arena : sig
  type t

  val create : unit -> t

  val for_current_domain : unit -> t
  (** The calling domain's own arena (one per domain, created on first
      use via domain-local storage) — the natural choice inside
      {!Moldable_util.Pool} workers, which are long-lived. *)
end

(** {1 Incremental stepper}

    The re-entrant form of the event loop, for long-running online
    consumers (the {!Moldable_service} daemon): tasks can be admitted
    {e after} the virtual clock has started, and the clock advances in
    bounded steps instead of running to completion.  {!run} is a thin
    loop over this module — create, admit every task of the DAG in id
    order, drain — so a stepper driven with the same admissions produces
    {e bit-identical} results to the batch run.

    The equivalence extends to late admission: a task admitted at any
    point strictly before the scheduling instant that completes its last
    outstanding dependency is revealed through the same unlock path, at
    the same position, as if it had been admitted up front (the
    differential suite exercises exactly this).  A dependency-free task
    admitted after the clock started is revealed at the current instant on
    the next [advance]/[drain]. *)
module Stepper : sig
  type t

  val create :
    ?seed:int ->
    ?max_attempts:int ->
    ?failures:failure_model ->
    ?tracer:Tracer.t ->
    ?registry:Moldable_obs.Registry.t ->
    ?arena:Arena.t ->
    ?lean:bool ->
    ?capacity:int ->
    p:int ->
    policy ->
    t
  (** All options have the same meaning and defaults as on {!run}.
      [capacity] pre-sizes the per-task storage (the stepper grows on
      demand past it).  The stepper holds the arena until {!drain} or
      {!abandon}. *)

  val admit_task : t -> ?release_time:float -> ?deps:int list -> Task.t -> int
  (** Admit a task and return its id, which is the number of previously
      admitted tasks — [task.id] must equal it.  [deps] (default none) are
      the ids of its direct predecessors, strictly increasing; forward
      references to not-yet-admitted ids are permitted (the run then
      stalls if they are never admitted), and dependencies on
      already-completed tasks are immediately satisfied.  [release_time]
      (default 0, finite, non-negative) delays the task's reveal as in
      {!run}.

      @raise Invalid_argument on a closed stepper, mismatched task id,
      ill-formed deps or release time. *)

  val advance : t -> until:float -> int
  (** Process every scheduling instant with an event stamp [<= until] and
      return how many were processed; afterwards {!now} is at least
      [until] (a batch's ulp-tolerant instant may exceed its earliest
      stamp, and so [until], by the batching epsilon).  The first call
      (or {!drain}) performs the time-0 source flush.  [until] may be
      [infinity] to process everything currently queued.

      @raise Policy_error on policy misbehaviour.
      @raise Invalid_argument on a closed stepper or NaN [until]. *)

  val drain : t -> result
  (** Run to completion of every admitted task and build the {!result}
      (identical to what {!run} returns for the same admissions).  The
      stepper is closed afterwards — even on failure — and the arena is
      released.

      @raise Policy_error if the policy stalls or misbehaves, including
      when an unadmitted forward dependency leaves tasks unrevealable.
      @raise Failure when a task would exceed [max_attempts]. *)

  val abandon : t -> unit
  (** Close the stepper without draining and release the arena; safe to
      call at any point, idempotent.  Used by servers tearing down a
      session mid-run. *)

  (** {2 Introspection}

      Cheap queries for serving live status; none of them affect the
      simulation. *)

  val now : t -> float
  (** Current virtual time: the latest processed scheduling instant or
      [advance] horizon. *)

  val started : t -> bool
  val closed : t -> bool

  val admitted : t -> int
  (** Tasks admitted so far (also the id the next admission gets). *)

  val completed : t -> int
  val ready : t -> int
  (** Tasks currently revealed and waiting for processors. *)

  val running : t -> int
  val free_procs : t -> int
  val makespan_so_far : t -> float
  (** Latest completion instant processed so far (0 before the first). *)

  val next_event_time : t -> float option
  (** Stamp of the earliest queued event — the next instant [advance]
      would process ([None] when nothing is queued). *)

  val n_events : t -> int
  (** Trace events recorded so far (0 in lean mode). *)

  val events_from : t -> int -> (float * event) list
  (** [events_from t k] is the chronological trace suffix starting at
      event index [k]: the incremental window a subscriber polls with
      [k = n_events] from the previous call.  Always empty in lean mode. *)
end

val run :
  ?release_times:float array ->
  ?seed:int ->
  ?max_attempts:int ->
  ?failures:failure_model ->
  ?tracer:Tracer.t ->
  ?registry:Moldable_obs.Registry.t ->
  ?arena:Arena.t ->
  ?lean:bool ->
  p:int ->
  policy ->
  Dag.t ->
  result
(** Simulates the policy on the graph with [p] processors.

    [release_times] (indexed by task id, non-negative, length [Dag.n])
    delays the reveal of each task to the maximum of its release time and
    the completion of its last predecessor.  [seed] (default 0) seeds the
    failure RNG.  [arena] supplies reusable per-run storage (see {!Arena});
    by default every run allocates fresh storage.  [lean:true] (default
    [false]) skips all trace/attempt/metric recording for makespan-only
    consumers: the result's [trace] and [attempts] are [[]] and [metrics]
    carries only the run counters, while [schedule], [makespan],
    [n_attempts] and [n_failures] are exactly those of the full run.
    [max_attempts] (default unlimited) bounds the attempts
    per task; the bound is checked {e before} any processor is acquired or
    event queued, and the error names the task, its attempt count and the
    failure model.  [failures] defaults to {!never}.

    [tracer] (default {!Tracer.null}, i.e. off) records execution spans for
    every attempt, instant markers for reveals/deferred releases/stalls and
    self-profile timers ([event-loop], [launch-round]); tracing never
    affects the schedule, and a [Tracer.null] run performs no tracing work
    beyond one branch per hook.

    [registry] (default {!Moldable_obs.Registry.null}, i.e. off) receives
    the run's counters as process-wide telemetry — [moldable_sim_events],
    [moldable_sim_batches], [moldable_sim_launches], [moldable_sim_retries],
    [moldable_sim_stall_checks] and [moldable_sim_runs] — published once at
    the end of the run (totals identical to per-event increments), so
    attaching a registry never touches the hot loop and never affects the
    schedule.

    @raise Policy_error on policy misbehaviour.
    @raise Invalid_argument on ill-formed release times or [max_attempts].
    @raise Failure when a task would exceed [max_attempts]. *)

val run_reference :
  ?release_times:float array ->
  ?seed:int ->
  ?max_attempts:int ->
  ?failures:failure_model ->
  ?tracer:Tracer.t ->
  ?registry:Moldable_obs.Registry.t ->
  p:int ->
  policy ->
  Dag.t ->
  result
(** The pre-arena event loop, kept verbatim as the differential oracle for
    {!run}: boxed event records on a closure-compared priority queue,
    cons-list recording, fresh storage per run.  Produces bit-identical
    schedules, traces, attempts and metrics to a full-mode {!run}; the
    qcheck properties in the test suite and the [alloc_lean] bench section
    pin the two against each other. *)
