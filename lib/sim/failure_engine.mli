(** Failure-prone execution of moldable task graphs.

    The paper notes that its results "readily carry over to the failure
    scenario" of Benoit et al. (resilient scheduling of moldable jobs): a
    task may fail silently and the failure is detected only when the task
    completes, at which point the task must be re-executed — from scratch,
    with a possibly different allocation — until one attempt succeeds.  This
    is semi-online: the graph reveal rules are unchanged, but completions
    may now be failures.

    This engine drives the same {!Engine.policy} interface: on a failed
    attempt, the task is handed back to the policy through [on_ready] (so a
    stateless allocator naturally re-allocates it) and its successors stay
    blocked until a successful attempt completes.

    Since the engine unification this module is a thin instantiation of
    {!Sim_core}, so failure runs support [release_times] and return the
    [Schedule.t] of successful attempts, the full event trace and a
    {!Metrics.t} — exactly like failure-free runs. *)

open Moldable_util
open Moldable_graph

type failure_model = Sim_core.failure_model = {
  model_name : string;
  fails : Rng.t -> task_id:int -> attempt:int -> bool;
      (** Decides whether the [attempt]-th execution (1-based) of the task
          fails. *)
}

val never : failure_model
val bernoulli : q:float -> failure_model
(** Each attempt fails independently with probability [q] in [\[0, 1)]. *)

val at_most : k:int -> failure_model
(** Deterministic: the first [k] attempts of every task fail, the next
    succeeds — handy for exact makespan assertions in tests. *)

type attempt = Sim_core.attempt = {
  task_id : int;
  attempt : int;      (** 1-based attempt number. *)
  start : float;
  finish : float;
  nprocs : int;
  procs : int array;
  failed : bool;
}

type result = {
  attempts : attempt list;  (** Chronological (by start, then task id). *)
  schedule : Schedule.t;
      (** One placement per task: its successful attempt. *)
  trace : (float * Sim_core.event) list;
      (** Chronological; includes {!Sim_core.Failed} events. *)
  metrics : Metrics.t;
  makespan : float;
  n_attempts : int;
  n_failures : int;
}

val run :
  ?seed:int -> ?max_attempts:int -> ?release_times:float array ->
  failures:failure_model -> p:int -> Engine.policy -> Dag.t -> result
(** [max_attempts] (default 1000) bounds the attempts per task, guarding
    against failure models that never succeed; the guard fires {e before}
    any processor is acquired and its message names the task, the attempt
    count and the failure model.
    @raise Engine.Policy_error on policy misbehaviour.
    @raise Failure when a task would exceed [max_attempts].
    @raise Invalid_argument on ill-formed release times. *)

val validate : dag:Dag.t -> p:int -> result -> (unit, string list) Stdlib.result
(** Checks: every task has exactly one successful attempt and it is its
    last; attempt durations equal [t(nprocs)]; precedence constraints hold
    against the {e successful} completion of predecessors (a predecessor
    that never succeeded is itself a violation for every downstream
    attempt); no processor is shared by two concurrent attempts. *)

val validate_exn : dag:Dag.t -> p:int -> result -> unit
