open Moldable_util
open Moldable_model
open Moldable_graph

type failure_model = {
  model_name : string;
  fails : Rng.t -> task_id:int -> attempt:int -> bool;
}

let never = { model_name = "never"; fails = (fun _ ~task_id:_ ~attempt:_ -> false) }

let bernoulli ~q =
  if q < 0. || q >= 1. then
    invalid_arg "Failure_engine.bernoulli: q must be in [0, 1)";
  {
    model_name = Printf.sprintf "bernoulli(%.3f)" q;
    fails = (fun rng ~task_id:_ ~attempt:_ -> Rng.bernoulli rng q);
  }

let at_most ~k =
  if k < 0 then invalid_arg "Failure_engine.at_most: k must be >= 0";
  {
    model_name = Printf.sprintf "at-most(%d)" k;
    fails = (fun _ ~task_id:_ ~attempt -> attempt <= k);
  }

type attempt = {
  task_id : int;
  attempt : int;
  start : float;
  finish : float;
  nprocs : int;
  procs : int array;
  failed : bool;
}

type result = {
  attempts : attempt list;
  makespan : float;
  n_attempts : int;
  n_failures : int;
}

type task_state = Unrevealed | Available | Running | Done

let run ?(seed = 0) ?(max_attempts = 1000) ~failures ~p policy dag =
  let n = Dag.n dag in
  let rng = Rng.create seed in
  let platform = Platform.create p in
  let events = Event_queue.create () in
  let state = Array.make n Unrevealed in
  let indeg = Array.init n (Dag.in_degree dag) in
  let attempt_no = Array.make n 0 in
  let completed = ref 0 in
  let attempts = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun s -> raise (Engine.Policy_error (policy.Engine.name ^ ": " ^ s)))
      fmt
  in
  let reveal now i =
    state.(i) <- Available;
    policy.Engine.on_ready ~now (Dag.task dag i)
  in
  let launch_round now =
    let rec loop () =
      let free = Platform.free_count platform in
      if free > 0 then
        match policy.Engine.next_launch ~now ~free with
        | None -> ()
        | Some (tid, nprocs) ->
          if tid < 0 || tid >= n then fail "launched unknown task %d" tid;
          (match state.(tid) with
          | Available -> ()
          | Unrevealed -> fail "launched unrevealed task %d" tid
          | Running -> fail "launched running task %d" tid
          | Done -> fail "launched completed task %d" tid);
          if nprocs < 1 || nprocs > free then
            fail "task %d launched on %d procs with %d free" tid nprocs free;
          let procs = Platform.acquire platform nprocs in
          let duration = Task.time (Dag.task dag tid) nprocs in
          state.(tid) <- Running;
          attempt_no.(tid) <- attempt_no.(tid) + 1;
          if attempt_no.(tid) > max_attempts then
            failwith
              (Printf.sprintf
                 "Failure_engine.run: task %d exceeded %d attempts" tid
                 max_attempts);
          Event_queue.add events
            ~time:(now +. duration)
            (tid, attempt_no.(tid), now, procs);
          loop ()
    in
    loop ()
  in
  List.iter (reveal 0.) (Dag.sources dag);
  launch_round 0.;
  while !completed < n do
    match Event_queue.pop_simultaneous events with
    | None ->
      fail "stalled: %d of %d tasks completed but nothing is running"
        !completed n
    | Some (now, batch) ->
      let succeeded = ref [] in
      List.iter
        (fun (tid, attempt, start, procs) ->
          Platform.release platform procs;
          let failed = failures.fails rng ~task_id:tid ~attempt in
          attempts :=
            {
              task_id = tid;
              attempt;
              start;
              finish = now;
              nprocs = Array.length procs;
              procs;
              failed;
            }
            :: !attempts;
          if failed then
            (* Detected at completion: re-execute from scratch; the policy
               re-chooses the allocation. *)
            reveal now tid
          else begin
            state.(tid) <- Done;
            incr completed;
            succeeded := tid :: !succeeded
          end)
        batch;
      List.iter
        (fun tid ->
          List.iter
            (fun j ->
              indeg.(j) <- indeg.(j) - 1;
              if indeg.(j) = 0 then reveal now j)
            (Dag.successors dag tid))
        (List.rev !succeeded);
      launch_round now
  done;
  let attempts =
    List.sort
      (fun a b ->
        match compare a.start b.start with
        | 0 -> compare (a.task_id, a.attempt) (b.task_id, b.attempt)
        | c -> c)
      !attempts
  in
  let makespan = List.fold_left (fun acc a -> Float.max acc a.finish) 0. attempts in
  let n_attempts = List.length attempts in
  let n_failures = List.length (List.filter (fun a -> a.failed) attempts) in
  { attempts; makespan; n_attempts; n_failures }

let validate ~dag ~p result =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let n = Dag.n dag in
  let success_finish = Array.make n nan in
  let per_task = Array.make n [] in
  List.iter
    (fun a -> per_task.(a.task_id) <- a :: per_task.(a.task_id))
    result.attempts;
  for i = 0 to n - 1 do
    let atts =
      List.sort (fun a b -> compare a.attempt b.attempt) per_task.(i)
    in
    (match atts with
    | [] -> err "task %d never executed" i
    | _ ->
      let k = List.length atts in
      List.iteri
        (fun idx a ->
          if a.attempt <> idx + 1 then
            err "task %d attempt numbering broken at %d" i a.attempt;
          let expected = Task.time (Dag.task dag i) a.nprocs in
          if
            not
              (Fcmp.approx ~eps:1e-6 expected (a.finish -. a.start))
          then
            err "task %d attempt %d has wrong duration" i a.attempt;
          if a.nprocs < 1 || a.nprocs > p then
            err "task %d attempt %d has bad allocation %d" i a.attempt a.nprocs;
          if idx = k - 1 then
            if a.failed then err "task %d's last attempt failed" i
            else success_finish.(i) <- a.finish
          else if not a.failed then
            err "task %d attempt %d succeeded but was re-executed" i a.attempt)
        atts)
  done;
  (* Precedence against successful completions: no attempt of a successor
     may start before every predecessor's success. *)
  List.iter
    (fun (i, j) ->
      List.iter
        (fun a ->
          if Fcmp.lt ~eps:1e-6 a.start success_finish.(i) then
            err "task %d attempt %d starts before predecessor %d succeeds" j
              a.attempt i)
        per_task.(j))
    (Dag.edges dag);
  (* Processor disjointness sweep over attempts. *)
  let evs =
    List.concat_map
      (fun a -> [ (a.finish, 0, a); (a.start, 1, a) ])
      result.attempts
    |> List.sort (fun (ta, ka, _) (tb, kb, _) ->
           match compare ta tb with 0 -> compare ka kb | c -> c)
  in
  let occupied = Array.make p false in
  List.iter
    (fun (_, phase, a) ->
      Array.iter
        (fun proc ->
          if phase = 0 then occupied.(proc) <- false
          else if occupied.(proc) then
            err "processor %d double-booked around task %d attempt %d" proc
              a.task_id a.attempt
          else occupied.(proc) <- true)
        a.procs)
    evs;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let validate_exn ~dag ~p result =
  match validate ~dag ~p result with
  | Ok () -> ()
  | Error es ->
    failwith ("invalid failure-schedule:\n  " ^ String.concat "\n  " es)
