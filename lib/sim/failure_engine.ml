open Moldable_util
open Moldable_model
open Moldable_graph

type failure_model = Sim_core.failure_model = {
  model_name : string;
  fails : Rng.t -> task_id:int -> attempt:int -> bool;
}

let never = Sim_core.never
let bernoulli = Sim_core.bernoulli
let at_most = Sim_core.at_most

type attempt = Sim_core.attempt = {
  task_id : int;
  attempt : int;
  start : float;
  finish : float;
  nprocs : int;
  procs : int array;
  failed : bool;
}

type result = {
  attempts : attempt list;
  schedule : Schedule.t;
  trace : (float * Sim_core.event) list;
  metrics : Metrics.t;
  makespan : float;
  n_attempts : int;
  n_failures : int;
}

(* The failure engine is the unified core with a non-trivial failure model;
   it regains release times, the [Schedule.t] of successful attempts and the
   event trace for free. *)
let run ?(seed = 0) ?(max_attempts = 1000) ?release_times ~failures ~p policy
    dag =
  let r =
    Sim_core.run ?release_times ~seed ~max_attempts ~failures ~p policy dag
  in
  {
    attempts = r.Sim_core.attempts;
    schedule = r.Sim_core.schedule;
    trace = r.Sim_core.trace;
    metrics = r.Sim_core.metrics;
    makespan = r.Sim_core.makespan;
    n_attempts = r.Sim_core.n_attempts;
    n_failures = r.Sim_core.n_failures;
  }

let validate ~dag ~p result =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let n = Dag.n dag in
  let success_finish = Array.make n nan in
  let per_task = Array.make n [] in
  List.iter
    (fun a -> per_task.(a.task_id) <- a :: per_task.(a.task_id))
    result.attempts;
  for i = 0 to n - 1 do
    let atts =
      List.sort (fun a b -> Int.compare a.attempt b.attempt) per_task.(i)
    in
    (match atts with
    | [] -> err "task %d never executed" i
    | _ ->
      let k = List.length atts in
      List.iteri
        (fun idx a ->
          if a.attempt <> idx + 1 then
            err "task %d attempt numbering broken at %d" i a.attempt;
          let expected = Task.time (Dag.task dag i) a.nprocs in
          if
            not
              (Fcmp.approx ~eps:1e-6 expected (a.finish -. a.start))
          then
            err "task %d attempt %d has wrong duration" i a.attempt;
          if a.nprocs < 1 || a.nprocs > p then
            err "task %d attempt %d has bad allocation %d" i a.attempt a.nprocs;
          if idx = k - 1 then
            if a.failed then err "task %d's last attempt failed" i
            else success_finish.(i) <- a.finish
          else if not a.failed then
            err "task %d attempt %d succeeded but was re-executed" i a.attempt)
        atts)
  done;
  (* Precedence against successful completions: no attempt of a successor
     may start before every predecessor's success.  A predecessor that never
     succeeded leaves [success_finish] at NaN, and every float comparison
     with NaN is false — so the NaN case must be flagged explicitly or the
     whole downstream subgraph would be silently accepted. *)
  List.iter
    (fun (i, j) ->
      List.iter
        (fun a ->
          if Float.is_nan success_finish.(i) then
            err
              "task %d attempt %d ran although predecessor %d never succeeded"
              j a.attempt i
          else if Fcmp.lt ~eps:1e-6 a.start success_finish.(i) then
            err "task %d attempt %d starts before predecessor %d succeeds" j
              a.attempt i)
        per_task.(j))
    (Dag.edges dag);
  (* Processor disjointness sweep over attempts. *)
  let evs =
    List.concat_map
      (fun a -> [ (a.finish, 0, a); (a.start, 1, a) ])
      result.attempts
    |> List.sort (fun (ta, ka, _) (tb, kb, _) ->
           match Float.compare ta tb with 0 -> Int.compare ka kb | c -> c)
  in
  let occupied = Array.make p false in
  List.iter
    (fun (_, phase, a) ->
      Array.iter
        (fun proc ->
          if phase = 0 then occupied.(proc) <- false
          else if occupied.(proc) then
            err "processor %d double-booked around task %d attempt %d" proc
              a.task_id a.attempt
          else occupied.(proc) <- true)
        a.procs)
    evs;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let validate_exn ~dag ~p result =
  match validate ~dag ~p result with
  | Ok () -> ()
  | Error es ->
    failwith ("invalid failure-schedule:\n  " ^ String.concat "\n  " es)
