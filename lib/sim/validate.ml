open Moldable_model
open Moldable_graph

let check ?(pool = Moldable_util.Pool.sequential) ~dag sched =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let n = Dag.n dag in
  if Schedule.n sched <> n then
    err "schedule has %d tasks but the graph has %d" (Schedule.n sched) n;
  let m = min n (Schedule.n sched) in
  (* Durations: independent per task, so chunked over the pool; the option
     array keeps error messages in task-index order regardless of which
     domain produced them. *)
  let duration_errors =
    Moldable_util.Pool.parallel_map pool
      (fun i ->
        let pl = Schedule.placement sched i in
        let expected = Task.time (Dag.task dag i) pl.Schedule.nprocs in
        let actual = pl.Schedule.finish -. pl.Schedule.start in
        if not (Moldable_util.Fcmp.approx ~eps:1e-6 expected actual) then
          Some
            (Printf.sprintf
               "task %d on %d procs should run %.9g time units but runs %.9g"
               i pl.Schedule.nprocs expected actual)
        else None)
      (Array.init m (fun i -> i))
  in
  Array.iter
    (function Some e -> errors := e :: !errors | None -> ())
    duration_errors;
  (* Precedence. *)
  List.iter
    (fun (i, j) ->
      if i < m && j < m then begin
        let pi = Schedule.placement sched i
        and pj = Schedule.placement sched j in
        if Moldable_util.Fcmp.lt ~eps:1e-6 pj.Schedule.start pi.Schedule.finish
        then
          err "edge (%d,%d) violated: %d starts at %.9g before %d finishes at \
               %.9g"
            i j j pj.Schedule.start i pi.Schedule.finish
      end)
    (Dag.edges dag);
  (* Processor disjointness: sweep; at equal times releases come first so
     back-to-back reuse of a processor is legal. *)
  let events = ref [] in
  for i = 0 to m - 1 do
    let pl = Schedule.placement sched i in
    events := (pl.Schedule.start, 1, pl) :: (pl.Schedule.finish, 0, pl)
              :: !events
  done;
  let events =
    List.sort
      (fun (ta, ka, _) (tb, kb, _) ->
        match Float.compare ta tb with 0 -> Int.compare ka kb | c -> c)
      !events
  in
  let occupied = Array.make (Schedule.p sched) (-1) in
  List.iter
    (fun (_, phase, (pl : Schedule.placement)) ->
      if phase = 0 then
        Array.iter
          (fun proc ->
            if occupied.(proc) = pl.Schedule.task_id then occupied.(proc) <- -1)
          pl.Schedule.procs
      else
        Array.iter
          (fun proc ->
            if occupied.(proc) >= 0 then
              err "processor %d used by tasks %d and %d simultaneously" proc
                occupied.(proc) pl.Schedule.task_id
            else occupied.(proc) <- pl.Schedule.task_id)
          pl.Schedule.procs)
    events;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_exn ?pool ~dag sched =
  match check ?pool ~dag sched with
  | Ok () -> ()
  | Error es -> failwith ("invalid schedule:\n  " ^ String.concat "\n  " es)

let respects_allocation_bound ~dag sched =
  let ok = ref true in
  for i = 0 to Dag.n dag - 1 do
    let a = Task.analyze ~p:(Schedule.p sched) (Dag.task dag i) in
    let pl = Schedule.placement sched i in
    if pl.Schedule.nprocs > a.Task.p_max then ok := false
  done;
  !ok
