type 'a item = { time : float; seq : int; payload : 'a }

type 'a t = {
  heap : 'a item Moldable_util.Pqueue.t;
  mutable next_seq : int;
}

let cmp a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () = { heap = Moldable_util.Pqueue.create ~cmp; next_seq = 0 }
let is_empty t = Moldable_util.Pqueue.is_empty t.heap
let length t = Moldable_util.Pqueue.length t.heap

let add t ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.add: time must be finite";
  Moldable_util.Pqueue.push t.heap { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1

let next_time t =
  Option.map (fun i -> i.time) (Moldable_util.Pqueue.peek t.heap)

let pop t =
  Option.map
    (fun i -> (i.time, i.payload))
    (Moldable_util.Pqueue.pop t.heap)

let pop_simultaneous t =
  match pop t with
  | None -> None
  | Some (time, first) ->
    let rec gather acc =
      match Moldable_util.Pqueue.peek t.heap with
      | Some i when i.time = time ->
        let i = Moldable_util.Pqueue.pop_exn t.heap in
        gather (i.payload :: acc)
      | Some _ | None -> List.rev acc
    in
    Some (time, gather [ first ])
