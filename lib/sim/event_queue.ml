type 'a item = { time : float; seq : int; payload : 'a }

type 'a t = {
  heap : 'a item Moldable_util.Pqueue.t;
  mutable next_seq : int;
}

let cmp a b =
  match compare a.time b.time with 0 -> compare a.seq b.seq | c -> c

let create () = { heap = Moldable_util.Pqueue.create ~cmp; next_seq = 0 }
let is_empty t = Moldable_util.Pqueue.is_empty t.heap
let length t = Moldable_util.Pqueue.length t.heap

let add t ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.add: time must be finite";
  Moldable_util.Pqueue.push t.heap { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1

let next_time t =
  Option.map (fun i -> i.time) (Moldable_util.Pqueue.peek t.heap)

let pop t =
  Option.map
    (fun i -> (i.time, i.payload))
    (Moldable_util.Pqueue.pop t.heap)

(* Completions that are simultaneous in exact arithmetic reach the queue
   through different float paths (each is a [start +. duration] sum), so
   they can disagree in the last ulp.  Batching by exact equality then
   splits one scheduling instant in two and the policy launches against a
   stale free count.  The tolerance is relative and keyed off the batch's
   first (earliest) timestamp — far below any genuine event separation, far
   above accumulated rounding noise. *)
(* Exposed so the exact shadow oracle (lib/exact) can replay the batching
   decision with the very same tolerance. *)
let batch_eps = 1e-12

let pop_simultaneous t =
  match pop t with
  | None -> None
  | Some (time, first) ->
    (* The returned instant is the LATEST stamp of the batch: events record
       their own stamps elsewhere (e.g. task finish times in the schedule),
       so anything the caller does "at" the batch instant must not precede
       any stamp inside it. *)
    let rec gather latest acc =
      match Moldable_util.Pqueue.peek t.heap with
      | Some i when Moldable_util.Fcmp.approx ~eps:batch_eps i.time time ->
        let i = Moldable_util.Pqueue.pop_exn t.heap in
        gather i.time (i.payload :: acc)
      | Some _ | None -> (latest, List.rev acc)
    in
    let latest, batch = gather time [ first ] in
    Some (latest, batch)
