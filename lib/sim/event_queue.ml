module Float_heap = Moldable_util.Float_heap

type t = {
  heap : Float_heap.t;
  (* Reusable batch buffer filled by [pop_batch]; parallel stamp/payload
     arrays, valid until the next pop. *)
  mutable batch_stamps : float array;
  mutable batch_loads : int array;
  mutable batch_len : int;
}

let create ?(capacity = 64) () =
  {
    heap = Float_heap.create ~capacity ();
    batch_stamps = Array.make 16 0.;
    batch_loads = Array.make 16 0;
    batch_len = 0;
  }

let clear t =
  Float_heap.clear t.heap;
  t.batch_len <- 0

let is_empty t = Float_heap.is_empty t.heap
let length t = Float_heap.length t.heap

let add t ~time payload =
  if not (Float.is_finite time) then
    invalid_arg "Event_queue.add: time must be finite";
  Float_heap.push t.heap ~key:time payload

let next_time t =
  if Float_heap.is_empty t.heap then None else Some (Float_heap.min_key t.heap)

let pop t = Float_heap.pop t.heap

(* Completions that are simultaneous in exact arithmetic reach the queue
   through different float paths (each is a [start +. duration] sum), so
   they can disagree in the last ulp.  Batching by exact equality then
   splits one scheduling instant in two and the policy launches against a
   stale free count.  The tolerance is relative and keyed off the batch's
   first (earliest) timestamp — far below any genuine event separation, far
   above accumulated rounding noise. *)
(* Exposed so the exact shadow oracle (lib/exact) can replay the batching
   decision with the very same tolerance. *)
let batch_eps = 1e-12

let batch_grow t =
  let cap = Array.length t.batch_loads in
  if t.batch_len = cap then begin
    let stamps = Array.make (2 * cap) 0. and loads = Array.make (2 * cap) 0 in
    Array.blit t.batch_stamps 0 stamps 0 t.batch_len;
    Array.blit t.batch_loads 0 loads 0 t.batch_len;
    t.batch_stamps <- stamps;
    t.batch_loads <- loads
  end

let[@inline] batch_append t stamp payload =
  batch_grow t;
  t.batch_stamps.(t.batch_len) <- stamp;
  t.batch_loads.(t.batch_len) <- payload;
  t.batch_len <- t.batch_len + 1

let pop_batch t =
  t.batch_len <- 0;
  if Float_heap.is_empty t.heap then 0
  else begin
    (* The batch is keyed off its first (earliest) stamp so it cannot
       drift; events pop in (time, insertion) order, so the last appended
       stamp is the batch's latest. *)
    let first = Float_heap.min_key t.heap in
    batch_append t first (Float_heap.min_payload t.heap);
    Float_heap.drop_min t.heap;
    let continue = ref true in
    while !continue do
      if Float_heap.is_empty t.heap then continue := false
      else begin
        let stamp = Float_heap.min_key t.heap in
        if Moldable_util.Fcmp.approx ~eps:batch_eps stamp first then begin
          batch_append t stamp (Float_heap.min_payload t.heap);
          Float_heap.drop_min t.heap
        end
        else continue := false
      end
    done;
    t.batch_len
  end

let batch_time t =
  if t.batch_len = 0 then invalid_arg "Event_queue.batch_time: empty batch";
  t.batch_stamps.(t.batch_len - 1)

let batch_stamp t i =
  if i < 0 || i >= t.batch_len then
    invalid_arg "Event_queue.batch_stamp: index out of range";
  t.batch_stamps.(i)

let batch_payload t i =
  if i < 0 || i >= t.batch_len then
    invalid_arg "Event_queue.batch_payload: index out of range";
  t.batch_loads.(i)

let pop_simultaneous t =
  match pop_batch t with
  | 0 -> None
  | n ->
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (t.batch_loads.(i) :: acc)
    in
    Some (t.batch_stamps.(n - 1), build (n - 1) [])
