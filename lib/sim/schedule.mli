(** Immutable record of a complete schedule: where and when every task ran.

    Built through a mutable {!builder} by the engine (or by hand for the
    constructive offline schedules of the lower-bound proofs), then finalized
    and queried. *)

type placement = {
  task_id : int;
  start : float;
  finish : float;
  nprocs : int;
  procs : int array; (** Ascending processor ids; length [nprocs]. *)
}

type t

(** {1 Building} *)

type builder

val builder : p:int -> n:int -> builder
(** [builder ~p ~n] prepares a schedule of [n] tasks on [p] processors. *)

val add : builder -> placement -> unit
(** @raise Invalid_argument on a duplicate task id, an out-of-range id, a
    negative-duration placement, or an ill-formed processor set. *)

val finalize : builder -> t
(** @raise Invalid_argument if some task has no placement. *)

(** {1 Queries} *)

val p : t -> int
val n : t -> int
val makespan : t -> float
val placement : t -> int -> placement
val placements : t -> placement list
(** Sorted by start time (ties by task id). *)

val utilization_steps : t -> (float * float * int) list
(** Step function of processor usage: [(t0, t1, busy)] segments covering
    [\[0, makespan\]] with constant busy count, in time order.  Segments of
    zero width are omitted. *)

val busy_area : t -> float
(** Integral of the busy count over time = sum of [nprocs * duration]. *)

val average_utilization : t -> float
(** [busy_area / (P * makespan)]; [0.] for an empty schedule. *)
