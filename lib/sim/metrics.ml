type counters = {
  mutable events : int;
  mutable batches : int;
  mutable launches : int;
  mutable retries : int;
  mutable stall_checks : int;
}

let make_counters () =
  { events = 0; batches = 0; launches = 0; retries = 0; stall_checks = 0 }

type segment = { t0 : float; t1 : float; busy : int }

type task_stat = {
  task_id : int;
  ready : float;
  start : float;
  finish : float;
  wait : float;
  service : float;
  attempts : int;
}

type t = {
  p : int;
  counters : counters;
  utilization : segment list;
  queue_depth : (float * int) list;
  tasks : task_stat array;
}

(* Sweep over the execution spans (attempt start/finish/nprocs) to recover
   the busy-processor timeline; simultaneous endpoints collapse into one
   breakpoint so segments are maximal. *)
let timeline_of_spans spans =
  let deltas =
    List.concat_map
      (fun (start, finish, nprocs) -> [ (start, nprocs); (finish, -nprocs) ])
      spans
    |> List.sort (fun (ta, _) (tb, _) -> Float.compare ta tb)
  in
  let rec sweep acc busy cursor = function
    | [] -> List.rev acc
    | (time, delta) :: rest ->
      let acc = if time > cursor then { t0 = cursor; t1 = time; busy } :: acc else acc in
      sweep acc (busy + delta) time rest
  in
  match deltas with [] -> [] | (t0, _) :: _ -> sweep [] 0 t0 deltas

let build ~p ~counters ~queue_depth ~tasks ~spans =
  { p; counters; utilization = timeline_of_spans spans; queue_depth; tasks }

let busy_area t =
  List.fold_left
    (fun acc s -> acc +. (float_of_int s.busy *. (s.t1 -. s.t0)))
    0. t.utilization

let span t =
  List.fold_left (fun acc s -> Float.max acc s.t1) 0. t.utilization

let average_utilization t =
  let horizon = span t in
  if (not (Float.is_finite horizon)) || horizon <= 0. then 0.
  else busy_area t /. (float_of_int t.p *. horizon)

let max_queue_depth t =
  List.fold_left (fun acc (_, d) -> max acc d) 0 t.queue_depth

(* Wait statistics skip non-finite samples (a wait is NaN when a task never
   started, e.g. in a partially-built report) and return 0 on an empty run,
   so downstream aggregation and JSON export never see NaN. *)
let mean_wait t =
  let n = ref 0 and sum = ref 0. in
  Array.iter
    (fun ts ->
      if Float.is_finite ts.wait then begin
        incr n;
        sum := !sum +. ts.wait
      end)
    t.tasks;
  if !n = 0 then 0. else !sum /. float_of_int !n

let max_wait t =
  Array.fold_left
    (fun acc ts -> if Float.is_finite ts.wait then Float.max acc ts.wait else acc)
    0. t.tasks

(* ------------------------------------------------------------------ export *)

(* JSON has no literal for NaN or infinity; non-finite values export as
   [null] so the documents always parse. *)
let f x = if Float.is_finite x then Printf.sprintf "%.12g" x else "null"

let to_json t =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add
    (Printf.sprintf
       "  \"counters\": {\"events\": %d, \"batches\": %d, \"launches\": %d, \
        \"retries\": %d, \"stall_checks\": %d},\n"
       t.counters.events t.counters.batches t.counters.launches
       t.counters.retries t.counters.stall_checks);
  add (Printf.sprintf "  \"p\": %d,\n" t.p);
  add (Printf.sprintf "  \"busy_area\": %s,\n" (f (busy_area t)));
  add
    (Printf.sprintf "  \"average_utilization\": %s,\n"
       (f (average_utilization t)));
  add "  \"utilization\": [";
  List.iteri
    (fun i s ->
      if i > 0 then add ", ";
      add
        (Printf.sprintf "{\"t0\": %s, \"t1\": %s, \"busy\": %d}" (f s.t0)
           (f s.t1) s.busy))
    t.utilization;
  add "],\n  \"queue_depth\": [";
  List.iteri
    (fun i (time, depth) ->
      if i > 0 then add ", ";
      add (Printf.sprintf "{\"time\": %s, \"depth\": %d}" (f time) depth))
    t.queue_depth;
  add "],\n  \"tasks\": [";
  Array.iteri
    (fun i ts ->
      if i > 0 then add ", ";
      add
        (Printf.sprintf
           "{\"task\": %d, \"ready\": %s, \"start\": %s, \"finish\": %s, \
            \"wait\": %s, \"service\": %s, \"attempts\": %d}"
           ts.task_id (f ts.ready) (f ts.start) (f ts.finish) (f ts.wait)
           (f ts.service) ts.attempts))
    t.tasks;
  add "]\n}\n";
  Buffer.contents buf

let utilization_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "t0,t1,busy\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d\n" (f s.t0) (f s.t1) s.busy))
    t.utilization;
  Buffer.contents buf

let queue_depth_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,depth\n";
  List.iter
    (fun (time, depth) ->
      Buffer.add_string buf (Printf.sprintf "%s,%d\n" (f time) depth))
    t.queue_depth;
  Buffer.contents buf

let tasks_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "task,ready,start,finish,wait,service,attempts\n";
  Array.iter
    (fun ts ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%s,%s,%s,%d\n" ts.task_id (f ts.ready)
           (f ts.start) (f ts.finish) (f ts.wait) (f ts.service) ts.attempts))
    t.tasks;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf
    "events=%d batches=%d launches=%d retries=%d stall_checks=%d util=%.1f%% \
     max_queue=%d mean_wait=%.4f max_wait=%.4f"
    t.counters.events t.counters.batches t.counters.launches t.counters.retries
    t.counters.stall_checks
    (100. *. average_utilization t)
    (max_queue_depth t) (mean_wait t) (max_wait t)
