(* Benchmark harness: regenerates every table and figure of the paper
   (Benoit, Perotin, Robert, Sun: "Online Scheduling of Moldable Task Graphs
   under Common Speedup Models", ICPP 2022) and runs Bechamel
   micro-benchmarks of the implementation.

   Run with: dune exec bench/main.exe
   Vector/graph artifacts (DOT, SVG) are written to ./paper_artifacts/. *)

open Moldable_model
open Moldable_graph
open Moldable_sim
open Moldable_util
open Moldable_core
open Moldable_theory
open Moldable_adversary
open Moldable_analysis

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n\n%!" bar title bar

(* ------------------------------------------------------------- arguments *)

(* --jobs N            worker domains for the parallel sweep sections
                       (default 1: fully sequential, the historical behavior)
   --artifacts D       output directory (default paper_artifacts)
   --only NAME         run only the named top-level section (repeatable)
   --reps N            time every section N times, report median + MAD
   --cells N           target cell count for the parallel_sweep campaign
   --baseline FILE     compare section timings against a committed baseline
   --baseline-strict   exit 1 when the baseline comparison flags a regression
   --no-history        skip appending to BENCH_history.jsonl *)
let jobs_flag = ref 1
let artifacts_flag = ref "paper_artifacts"
let only_flag : string list ref = ref []
let reps_flag = ref 1
let cells_flag = ref 1000
let baseline_flag : string option ref = ref None
let baseline_strict_flag = ref false
let no_history_flag = ref false

let parse_args () =
  let specs =
    [
      ( "--jobs",
        Arg.Set_int jobs_flag,
        "N  Worker domains for parallel sweeps (default 1; results are \
         identical at any job count)" );
      ( "--artifacts",
        Arg.Set_string artifacts_flag,
        "DIR  Artifact output directory (default paper_artifacts)" );
      ( "--only",
        Arg.String (fun s -> only_flag := s :: !only_flag),
        "SECTION  Run only this top-level section (repeatable; e.g. \
         parallel_sweep)" );
      ( "--reps",
        Arg.Set_int reps_flag,
        "N  Repetitions per section; timings report the median and MAD \
         (default 1)" );
      ( "--cells",
        Arg.Set_int cells_flag,
        "N  Target cell count for the parallel_sweep campaign (default \
         1000; the >= 1.5x fan-out gate needs enough work to amortize pool \
         overhead)" );
      ( "--baseline",
        Arg.String (fun s -> baseline_flag := Some s),
        "FILE  Compare section timings against this bench baseline \
         (schema moldable_obs/bench_baseline/v1); report-only unless \
         --baseline-strict" );
      ( "--baseline-strict",
        Arg.Set baseline_strict_flag,
        "  Exit 1 when --baseline flags a regression" );
      ( "--no-history",
        Arg.Set no_history_flag,
        "  Do not append this run's timings to BENCH_history.jsonl" );
    ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "bench/main.exe [--jobs N] [--artifacts DIR] [--only SECTION] [--reps N] \
     [--cells N] [--baseline FILE] [--baseline-strict] [--no-history]";
  if !jobs_flag < 1 then begin
    prerr_endline "--jobs must be >= 1";
    exit 2
  end;
  if !reps_flag < 1 then begin
    prerr_endline "--reps must be >= 1";
    exit 2
  end;
  if !cells_flag < 1 then begin
    prerr_endline "--cells must be >= 1";
    exit 2
  end

(* Machine-readable perf trajectory: every top-level section records its
   wall-clock time, and the hot-path scalability section additionally
   records its per-configuration timings; both are written to
   paper_artifacts/BENCH_scaling.json at the end of the run so regressions
   are diffable across PRs. *)
let section_timings : (string * float) list ref = ref []

(* One Bench_track row per section (median of --reps repetitions + MAD +
   per-repetition GC words): appended to BENCH_history.jsonl and compared
   against --baseline at the end of the run. *)
let bench_rows : Moldable_obs.Bench_track.row list ref = ref []

(* Null-registry overhead probe of the telemetry section, recorded into
   BENCH_scaling.json: (default_s, null_s, live_s). *)
let telemetry_probe : (float * float * float) option ref = ref None

type scaling_row = {
  sc_workload : string;
  sc_tasks : int;
  sc_p : int;
  sc_heap_s : float;
  sc_reference_s : float option;
}

let scaling_rows : scaling_row list ref = ref []

(* Sequential-vs-parallel wall-clock of every fanned-out section, recorded
   into BENCH_scaling.json so speedups are diffable across PRs. *)
type parallel_row = {
  pl_section : string;
  pl_jobs : int;
  pl_cells : int;
  pl_seq_s : float;
  pl_par_s : float;
}

let parallel_rows : parallel_row list ref = ref []

(* Runs [compute] once with the sequential pool and — when [pool] is
   parallel — once more with [pool], wall-clocks both, and checks with
   [equal] that the two results are identical (the determinism guarantee of
   the seed-splitting scheme; a mismatch aborts the bench).  Returns the
   result and the recorded timing row. *)
let compare_seq_par ~name ~cells ~equal pool compute =
  let t0 = Clock.now () in
  let seq = compute Pool.sequential in
  let seq_s = Clock.now () -. t0 in
  let result, par_s =
    if Pool.jobs pool <= 1 then (seq, seq_s)
    else begin
      let t1 = Clock.now () in
      let par = compute pool in
      let par_s = Clock.now () -. t1 in
      if not (equal seq par) then
        failwith
          (Printf.sprintf
             "%s: parallel result differs from sequential (jobs=%d)" name
             (Pool.jobs pool));
      (par, par_s)
    end
  in
  let row =
    { pl_section = name; pl_jobs = Pool.jobs pool; pl_cells = cells;
      pl_seq_s = seq_s; pl_par_s = par_s }
  in
  parallel_rows := row :: !parallel_rows;
  Printf.printf
    "  [%s] %d cells: sequential %.3f s, jobs=%d %.3f s (%.2fx)\n" name cells
    seq_s (Pool.jobs pool) par_s
    (seq_s /. Float.max 1e-9 par_s);
  (result, row)

let write_artifact name content =
  let dir = !artifacts_flag in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  (* Crash-safe: write to a temp file in the same directory and rename into
     place, so an interrupted run never leaves a truncated artifact. *)
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ name) ".tmp" in
  let oc = open_out tmp in
  (match output_string oc content with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path;
  Printf.printf "  [artifact] %s/%s\n" dir name

(* ------------------------------------------------- Table 1: upper bounds *)

let table1_upper () =
  section
    "Table 1 (upper bounds) — competitive ratios of Algorithm 1, recomputed \
     by numerically minimizing the Lemma 5 ratio over mu (Theorems 1-4)";
  let tab =
    Texttab.create
      ~headers:[ "model"; "mu*"; "x*"; "ratio (ours)"; "paper"; "match" ]
  in
  List.iter
    (fun (r : Model_bounds.row) ->
      Texttab.add_row tab
        [
          Model_bounds.family_name r.Model_bounds.family;
          Printf.sprintf "%.4f" r.Model_bounds.mu_star;
          (match r.Model_bounds.family with
          | Model_bounds.Roofline -> "-"
          | _ -> Printf.sprintf "%.4f" r.Model_bounds.x_star_value);
          Printf.sprintf "%.4f" r.Model_bounds.ratio;
          Printf.sprintf "%.2f" r.Model_bounds.paper_ratio;
          (if
             r.Model_bounds.ratio <= r.Model_bounds.paper_ratio +. 5e-3
             && r.Model_bounds.ratio >= r.Model_bounds.paper_ratio -. 0.02
           then "yes"
           else "NO");
        ])
    (Model_bounds.table1_upper ());
  Texttab.print tab

(* ------------------------------------------------- Table 1: lower bounds *)

let table1_lower () =
  section
    "Table 1 (lower bounds) — lower bounds on Algorithm 1's competitiveness \
     (closed forms of Theorems 5-8)";
  let tab =
    Texttab.create ~headers:[ "model"; "mu"; "bound (ours)"; "paper"; "match" ]
  in
  List.iter
    (fun (r : Lower_bounds.row) ->
      Texttab.add_row tab
        [
          Model_bounds.family_name r.Lower_bounds.family;
          Printf.sprintf "%.4f" r.Lower_bounds.mu;
          Printf.sprintf "%.4f" r.Lower_bounds.bound;
          Printf.sprintf "%.2f" r.Lower_bounds.paper_bound;
          (if Float.abs (r.Lower_bounds.bound -. r.Lower_bounds.paper_bound)
              < 0.02
           then "yes"
           else "NO");
        ])
    (Lower_bounds.table1_lower ());
  Texttab.print tab

(* ----------------------------------- Table 1: lower bounds, by simulation *)

let table1_measured pool () =
  section
    "Table 1 (lower bounds, measured) — Algorithm 1 executed on the \
     adversarial graphs of Figure 1; the ratio vs the constructive offline \
     schedule climbs toward the theorem's limit as P grows";
  let tab =
    Texttab.create
      ~headers:
        [ "instance"; "P"; "tasks"; "T(alg1)"; "T(offline)"; "ratio"; "limit" ]
  in
  (* Instance construction is cheap and stays on the caller; only the
     adversarial-family runs fan out.  Groups are separated in the table. *)
  let groups =
    [
      List.map (fun p -> Instances.roofline ~p) [ 100; 1000; 10000 ];
      List.map (fun p -> Instances.communication ~p) [ 100; 500; 2000 ];
      List.map (fun k -> Instances.amdahl ~k) [ 10; 30; 100 ];
      List.map (fun k -> Instances.general ~k) [ 10; 30; 100 ];
    ]
  in
  let instances = List.concat groups in
  let makespans, _ =
    compare_seq_par ~name:"adversarial_families"
      ~cells:(List.length instances)
      ~equal:(fun a b -> List.for_all2 Float.equal a b)
      pool
      (fun pool ->
        Pool.map_list ~chunk:1 pool
          (fun inst ->
            Schedule.makespan (Instances.run_online inst).Engine.schedule)
          instances)
  in
  let remaining = ref makespans in
  List.iteri
    (fun gi group ->
      if gi > 0 then Texttab.add_sep tab;
      List.iter
        (fun inst ->
          let t = List.hd !remaining in
          remaining := List.tl !remaining;
          (* The simulation must land exactly on the proof's prediction. *)
          assert (Fcmp.approx ~eps:1e-6 t inst.Instances.predicted_online);
          Texttab.add_row tab
            [
              inst.Instances.name;
              string_of_int inst.Instances.p;
              string_of_int (Dag.n inst.Instances.dag);
              Printf.sprintf "%.2f" t;
              Printf.sprintf "%.2f" inst.Instances.alternative_makespan;
              Printf.sprintf "%.4f" (t /. inst.Instances.alternative_makespan);
              Printf.sprintf "%.4f" inst.Instances.limit_ratio;
            ])
        group)
    groups;
  Texttab.print tab

(* ------------------------------------ Convergence plots (measured ratios) *)

let convergence_plots pool () =
  section
    "Convergence plots — measured Algorithm 1 ratio on the adversarial \
     instances vs platform scale, against each theorem's limit";
  (* One cell per (instance, abscissa); build the instance list on the
     caller, fan the runs out, then slice the flat ratio list back into the
     three curves. *)
  let specs =
    List.map
      (fun p -> (float_of_int p, Instances.communication ~p))
      [ 20; 40; 80; 160; 320; 640; 1280 ]
    @ List.map
        (fun k -> (float_of_int (k * k), Instances.amdahl ~k))
        [ 6; 9; 14; 20; 30; 45; 70 ]
    @ List.map
        (fun k -> (float_of_int (k * k), Instances.general ~k))
        [ 7; 10; 15; 22; 33; 50; 70 ]
  in
  let ratios, _ =
    compare_seq_par ~name:"convergence_plots" ~cells:(List.length specs)
      ~equal:(fun a b -> List.for_all2 Float.equal a b)
      pool
      (fun pool ->
        Pool.map_list ~chunk:1 pool
          (fun (_, inst) ->
            Schedule.makespan (Instances.run_online inst).Engine.schedule
            /. inst.Instances.alternative_makespan)
          specs)
  in
  let points = List.map2 (fun (x, _) r -> (x, r)) specs ratios in
  let rec take n = function
    | [] -> []
    | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
  in
  let rec drop n xs =
    if n = 0 then xs else match xs with [] -> [] | _ :: tl -> drop (n - 1) tl
  in
  let comm_points = take 7 points in
  let amdahl_points = take 7 (drop 7 points) in
  let general_points = drop 14 points in
  let limit name inst = (inst.Instances.limit_ratio, name) in
  print_string
    (Moldable_viz.Ascii_plot.render ~x_log:true ~xlabel:"P" ~ylabel:"T / T_offline"
       ~hlines:
         [
           limit "Thm 6 limit" (Instances.communication ~p:20);
           limit "Thm 7 limit" (Instances.amdahl ~k:6);
           limit "Thm 8 limit" (Instances.general ~k:7);
         ]
       [
         { Moldable_viz.Ascii_plot.label = "communication"; glyph = 'c';
           points = comm_points };
         { Moldable_viz.Ascii_plot.label = "amdahl"; glyph = 'a';
           points = amdahl_points };
         { Moldable_viz.Ascii_plot.label = "general"; glyph = 'g';
           points = general_points };
       ])

(* ---------------------------------------------------------------- Table 2 *)

let table2 () =
  section
    "Table 2 — instances of the scheduling problem (literature \
     classification; static, from the paper's Section 2)";
  let tab = Texttab.create ~headers:[ "problem instance"; "offline"; "online" ] in
  Texttab.add_row tab
    [
      "independent moldable tasks";
      "Turek+ '92; Jansen '12; Jansen&Land '18";
      "Dutton&Mao '07; Havill&Mao '08; Kell&Havill '15; Ye+ '18";
    ];
  Texttab.add_row tab
    [
      "moldable task graphs";
      "Wang&Cheng '92; Lepere+ '01; Jansen&Zhang '06; Chen&Chu '13";
      "Feldmann+ '98 (roofline); THIS PAPER (comm/Amdahl/general)";
    ];
  Texttab.print tab

(* ---------------------------------------------------------------- Figure 1 *)

let figure1 () =
  section
    "Figure 1 — the generic adversarial task graph ((X+1)Y+1 tasks), \
     instantiated for each lower-bound theorem";
  let tab =
    Texttab.create ~headers:[ "theorem"; "P"; "X"; "Y"; "tasks"; "edges"; "height" ]
  in
  let describe name inst =
    let dag = inst.Instances.dag in
    (* Recover X and Y from the structure: Y = height - 1 (A-chain plus C). *)
    let y = Moldable_graph.Topo.height dag - 1 in
    let x = if y = 0 then 0 else (Dag.n dag - 1 - y) / y in
    Texttab.add_row tab
      [
        name;
        string_of_int inst.Instances.p;
        string_of_int x;
        string_of_int y;
        string_of_int (Dag.n dag);
        string_of_int (Dag.n_edges dag);
        string_of_int (Moldable_graph.Topo.height dag);
      ]
  in
  describe "Thm 6 (comm), P=30" (Instances.communication ~p:30);
  describe "Thm 7 (amdahl), K=8" (Instances.amdahl ~k:8);
  describe "Thm 8 (general), K=8" (Instances.general ~k:8);
  Texttab.print tab;
  let small = Instances.communication ~p:12 in
  write_artifact "figure1_generic_graph.dot"
    (Moldable_viz.Dot.of_dag ~name:"figure1"
       ~show_speedup:false small.Instances.dag)

(* ---------------------------------------------------------------- Figure 2 *)

let figure2 () =
  section
    "Figure 2 — schedule shapes on the adversarial graph (communication \
     model, P=16): (a) Algorithm 1 processes layers one after another; (b) \
     the clairvoyant schedule packs A's, B's and C";
  let inst = Instances.communication ~p:16 in
  let online = Instances.run_online inst in
  let label i = (Dag.task inst.Instances.dag i).Task.label in
  Printf.printf "(a) Algorithm 1 (makespan %.2f):\n%s\n"
    (Schedule.makespan online.Engine.schedule)
    (Moldable_viz.Gantt.render ~width:72 ~max_rows:16 ~legend:false ~label
       online.Engine.schedule);
  Printf.printf "(b) clairvoyant alternative (makespan %.2f):\n%s\n"
    inst.Instances.alternative_makespan
    (Moldable_viz.Gantt.render ~width:72 ~max_rows:16 ~legend:false ~label
       inst.Instances.alternative);
  write_artifact "figure2a_online.svg"
    (Moldable_viz.Svg.of_schedule ~label online.Engine.schedule);
  write_artifact "figure2b_offline.svg"
    (Moldable_viz.Svg.of_schedule ~label inst.Instances.alternative)

(* ---------------------------------------------------------------- Figure 3 *)

let figure3 () =
  section
    "Figure 3 — the Theorem 9 chain instance for l=2: K=4, 15 chains in 4 \
     groups, 26 identical tasks with t(p) = 1/(lg p + 1), P = 32";
  let inst = Chains.build ~ell:2 in
  let tab = Texttab.create ~headers:[ "group"; "chains"; "tasks/chain" ] in
  for g = 1 to inst.Chains.k do
    let n =
      Array.fold_left
        (fun acc x -> if x = g then acc + 1 else acc)
        0 inst.Chains.group
    in
    Texttab.add_row tab [ string_of_int g; string_of_int n; string_of_int g ]
  done;
  Texttab.print tab;
  Printf.printf "total: %d chains, %d tasks, P = %d\n"
    (Array.length inst.Chains.chains)
    (Dag.n inst.Chains.dag) inst.Chains.p;
  write_artifact "figure3_chains.dot"
    (Moldable_viz.Dot.of_dag ~name:"figure3" inst.Chains.dag)

(* ---------------------------------------------------------------- Figure 4 *)

let figure4 () =
  section
    "Figure 4 — schedules of the Figure 3 instance: (a) offline, makespan \
     exactly 1; (b) online equal-allocation against the Lemma 10 adversary, \
     breakpoints t1..t4 (paper: 1/2, 5/6, ~1.07, ~1.23)";
  let inst = Chains.build ~ell:2 in
  let off = Chain_adversary.offline_schedule inst in
  Validate.check_exn ~dag:inst.Chains.dag off;
  Printf.printf "(a) offline schedule: makespan = %.6f (paper: 1.0)\n\n%s\n"
    (Schedule.makespan off)
    (Moldable_viz.Gantt.render ~width:72 ~max_rows:16 ~legend:false off);
  let o = Chain_adversary.equal_split ~ell:2 in
  let eq = Chain_adversary.equal_split_schedule inst in
  Validate.check_exn ~dag:inst.Chains.dag eq;
  let paper = [| 0.5; 5. /. 6.; 1.07; 1.23 |] in
  let tab = Texttab.create ~headers:[ "breakpoint"; "ours"; "paper" ] in
  Array.iteri
    (fun i t ->
      Texttab.add_row tab
        [
          Printf.sprintf "t%d" (i + 1);
          Printf.sprintf "%.4f" t;
          Printf.sprintf "%.2f" paper.(i);
        ])
    o.Chain_adversary.breakpoints;
  Texttab.print tab;
  Printf.printf "\n(b) equal-allocation schedule (makespan %.4f):\n\n%s\n"
    (Schedule.makespan eq)
    (Moldable_viz.Gantt.render ~width:72 ~max_rows:16 ~legend:false eq);
  write_artifact "figure4a_offline.svg" (Moldable_viz.Svg.of_schedule off);
  write_artifact "figure4b_online.svg" (Moldable_viz.Svg.of_schedule eq)

(* ------------------------------------------------------ Theorem 9 scaling *)

let theorem9 () =
  section
    "Theorem 9 — Omega(ln D) lower bound for any deterministic online \
     algorithm under arbitrary speedups (offline makespan = 1 throughout)";
  let tab =
    Texttab.create
      ~headers:
        [
          "l"; "K = D"; "chains"; "ln K - ln l - 1/l"; "Lemma 10 sum";
          "equal-split"; "Algorithm 1";
        ]
  in
  List.iter
    (fun ell ->
      let params = Arbitrary_lb.params ~ell in
      let eq = Chain_adversary.equal_split ~ell in
      let alg1 =
        if ell <= 3 then begin
          let mu = Mu.default Speedup.Kind_general in
          let alloc =
            Chain_adversary.algorithm2_alloc ~mu ~p:params.Arbitrary_lb.p
          in
          Printf.sprintf "%.3f"
            (Chain_adversary.list_scheduling ~alloc ~ell)
              .Chain_adversary.makespan
        end
        else "-"
      in
      Texttab.add_row tab
        [
          string_of_int ell;
          string_of_int params.Arbitrary_lb.k;
          string_of_int params.Arbitrary_lb.n_chains;
          Printf.sprintf "%.3f" (Arbitrary_lb.log_gap ~ell);
          Printf.sprintf "%.3f" (Arbitrary_lb.adversary_gap_sum ~ell);
          Printf.sprintf "%.3f" eq.Chain_adversary.makespan;
          alg1;
        ])
    [ 1; 2; 3; 4; 5 ];
  Texttab.print tab;
  print_string
    "Every online strategy stays above the Lemma 10 sum; the offline optimum \
     is 1,\nso the ratio grows as Omega(ln D) with D = K tasks on the longest \
     path.\n"

(* ------------------------------------- Empirical validation (future work) *)

let empirical pool () =
  section
    "Empirical validation — Algorithm 1 vs baselines on random and realistic \
     workloads (the experimental study the paper's conclusion proposes). \
     Ratios are T / max(A_min/P, C_min); the proven bound caps Algorithm 1 \
     but not the baselines.";
  (* Instance generation draws from one generator per model family, split
     off the campaign seed in a fixed order on the caller; only the
     (policy, instance) evaluation cells fan out, so the campaign is
     identical at any job count. *)
  let seeds = Rng.create 20220829 in
  let instances_per_family = 25 in
  let campaigns =
    List.map
      (fun (kind, bound) ->
        let rng = Rng.split seeds in
        let dags_layered =
          List.init instances_per_family (fun _ ->
              Moldable_workloads.Random_dag.layered ~rng ~n_layers:6 ~width:8
                ~edge_prob:0.25 ~kind ())
        in
        let dags_linalg =
          List.init 5 (fun i ->
              Moldable_workloads.Linalg.cholesky ~rng ~tiles:(4 + i) ~kind ())
        in
        let dags_sci =
          List.init 5 (fun i ->
              Moldable_workloads.Scientific.montage ~rng ~width:(8 + (4 * i))
                ~kind ())
        in
        let dags_cyber =
          List.init 3 (fun i ->
              Moldable_workloads.Scientific.cybershake ~rng ~sites:(3 + i)
                ~variations:8 ~kind ())
        in
        let dags_ligo =
          List.init 3 (fun i ->
              Moldable_workloads.Scientific.ligo ~rng ~blocks:(3 + i)
                ~per_block:10 ~kind ())
        in
        let policies =
          Experiment.algorithm1_fixed_mu (Mu.default kind)
          :: List.tl Experiment.default_policies
        in
        ( kind,
          bound,
          policies,
          [
            ("layered", dags_layered); ("cholesky", dags_linalg);
            ("montage", dags_sci); ("cybershake", dags_cyber);
            ("ligo", dags_ligo);
          ] ))
      [
        (Speedup.Kind_roofline, 2.62);
        (Speedup.Kind_communication, 3.61);
        (Speedup.Kind_amdahl, 4.74);
        (Speedup.Kind_general, 5.72);
      ]
  in
  let cells =
    List.fold_left
      (fun acc (_, _, policies, families) ->
        acc
        + List.length policies
          * List.fold_left (fun a (_, dags) -> a + List.length dags) 0 families)
      0 campaigns
  in
  let results, _ =
    compare_seq_par ~name:"empirical" ~cells
      ~equal:(fun a b ->
        List.for_all2 (List.for_all2 Experiment.equal_outcome) a b)
      pool
      (fun pool ->
        List.map
          (fun (_, _, policies, families) ->
            List.concat_map
              (fun (workload, dags) ->
                Experiment.evaluate ~pool ~p:64 ~workload ~policies dags)
              families)
          campaigns)
  in
  List.iter2
    (fun (kind, bound, _, _) outcomes ->
      Printf.printf "--- %s model (proven bound %.2f) ---\n"
        (Speedup.kind_name kind) bound;
      print_string (Report.table ~bound outcomes);
      print_newline ())
    campaigns results

(* -------------------------------- Independent moldable tasks (Table 2 row 1) *)

let independent_section () =
  section
    "Independent moldable tasks (the first row of Table 2): the paper's \
     DAG algorithm vs the classic related-work algorithms — Turek et al.'s \
     offline dual-approximation and the Ye et al.-style canonical-allotment \
     online rule";
  let rng = Rng.create 1_992 in
  let tab =
    Texttab.create
      ~headers:
        [ "model"; "n"; "P"; "LB"; "Alg 1 (online)"; "Ye canonical (online)";
          "Turek (offline)"; "3 tau*" ]
  in
  List.iter
    (fun kind ->
      List.iter
        (fun (n, p) ->
          let dag =
            Moldable_workloads.Random_dag.independent ~rng ~n ~kind ()
          in
          let lb = (Bounds.compute ~p dag).Bounds.lower_bound in
          let alg1 = Online_scheduler.makespan ~p dag in
          let ye =
            Schedule.makespan
              (Moldable_indep.Ye.run ~p dag).Engine.schedule
          in
          let turek = Moldable_indep.Turek.schedule ~p dag in
          Texttab.add_row tab
            [
              Speedup.kind_name kind;
              string_of_int n;
              string_of_int p;
              Printf.sprintf "%.1f" lb;
              Printf.sprintf "%.1f (%.2fx)" alg1 (alg1 /. lb);
              Printf.sprintf "%.1f (%.2fx)" ye (ye /. lb);
              Printf.sprintf "%.1f (%.2fx)" turek.Moldable_indep.Turek.makespan
                (turek.Moldable_indep.Turek.makespan /. lb);
              Printf.sprintf "%.1f"
                (3. *. turek.Moldable_indep.Turek.tau_star);
            ])
        [ (50, 16); (200, 64); (500, 128) ])
    [ Speedup.Kind_roofline; Speedup.Kind_communication; Speedup.Kind_amdahl;
      Speedup.Kind_general ];
  Texttab.print tab;
  print_string
    "The offline dual-approximation always respects its 3 tau* guarantee and \
     the\npaper's Algorithm 1 tracks it closely even without clairvoyance. \
     The bare\ncanonical allotment over-parallelizes large task sets with \
     strong sequential\nfractions (Amdahl) — the contention cap that Ye et \
     al. add on top is what\nrestores their constant ratio.\n"

(* -------------------------------------------------- Ablation: mu sensitivity *)

let mu_sensitivity pool () =
  section
    "Ablation — sensitivity to mu: the theoretical ratio (Lemma 5, \
     minimized over x) and the measured worst ratio on a fixed batch of \
     layered DAGs, as mu sweeps the admissible range";
  let rng = Rng.create 123_456 in
  let batches =
    List.map
      (fun kind ->
        ( kind,
          List.init 10 (fun _ ->
              Moldable_workloads.Random_dag.layered ~rng ~n_layers:5 ~width:8
                ~edge_prob:0.25 ~kind ()) ))
      [ Speedup.Kind_communication; Speedup.Kind_amdahl; Speedup.Kind_general ]
  in
  let family_of = function
    | Speedup.Kind_communication -> Model_bounds.Communication
    | Speedup.Kind_amdahl -> Model_bounds.Amdahl
    | _ -> Model_bounds.General
  in
  let mus = [ 0.10; 0.15; 0.21; 0.27; 0.32; 0.38 ] in
  let tab =
    Texttab.create
      ~headers:
        ("model"
        :: List.map (fun mu -> Printf.sprintf "mu=%.2f" mu) mus)
  in
  (* One cell per (model, mu, instance); the worst-ratio fold happens after
     the fan-out so the reduction order is fixed. *)
  let measured, _ =
    compare_seq_par ~name:"mu_sensitivity"
      ~cells:(List.length batches * List.length mus * 10)
      ~equal:(fun a b -> List.for_all2 (List.for_all2 Float.equal) a b)
      pool
      (fun pool ->
        List.map
          (fun (_, dags) ->
            List.map
              (fun mu ->
                let ratios =
                  Pool.map_list ~chunk:1 pool
                    (fun dag ->
                      snd
                        (Experiment.run_one ~p:64
                           (Experiment.algorithm1_fixed_mu mu) dag))
                    dags
                in
                List.fold_left Float.max 1. ratios)
              mus)
          batches)
  in
  List.iter2
    (fun (kind, _) worsts ->
      let theory_row =
        List.map
          (fun mu ->
            let ub = Model_bounds.upper_bound_at (family_of kind) ~mu in
            if ub = infinity then "inf" else Printf.sprintf "%.2f" ub)
          mus
      in
      Texttab.add_row tab ((Speedup.kind_name kind ^ " (theory)") :: theory_row);
      Texttab.add_row tab
        ((Speedup.kind_name kind ^ " (measured)")
        :: List.map (fun w -> Printf.sprintf "%.2f" w) worsts))
    batches measured;
  Texttab.print tab;
  print_string
    "Measured worst ratios vary far less than the theoretical curve: the \
     bound's\nsensitivity to mu is a worst-case phenomenon.\n"

(* ------------------------------------------- Future work: power-law model *)

let power_law_section () =
  section
    "Future work — the Prasanna-Musicus power-law model t(p) = w/p^alpha \
     (one of the 'other common speedup models' of Section 6): Algorithm 2's \
     area inflation grows as allocation^(1-alpha), so the ratio vs the \
     Lemma 2 bound grows with P — no constant competitive ratio";
  let tab =
    Texttab.create
      ~headers:
        ([ "alpha" ]
        @ List.map (fun p -> Printf.sprintf "P=%d" p) [ 32; 128; 512; 2048 ])
  in
  List.iter
    (fun alpha ->
      let row =
        List.map
          (fun p ->
            let tasks =
              List.init 64 (fun id ->
                  Task.make ~id (Speedup.Power { w = 100.; alpha }))
            in
            let dag = Dag.create ~tasks ~edges:[] in
            let makespan = Online_scheduler.makespan ~p dag in
            let lb = (Bounds.compute ~p dag).Bounds.lower_bound in
            Printf.sprintf "%.2f" (makespan /. lb))
          [ 32; 128; 512; 2048 ]
      in
      Texttab.add_row tab (Printf.sprintf "%.2f" alpha :: row))
    [ 0.5; 0.7; 0.9; 1.0 ];
  Texttab.print tab;
  print_string
    "alpha = 1 is linear speedup (roofline-like, ratio stays constant); \
     smaller\nalpha inflates the area of every allocation and the ratio \
     diverges with P.\n"

(* ------------------------------------------- Ablation: failure resilience *)

let failures_section pool () =
  section
    "Extension — failure-prone execution (the semi-online scenario of \
     Benoit et al. the paper says its results carry over to): Algorithm 1 \
     re-executing failed tasks, expected slowdown ~ 1/(1-q)";
  let rng = Rng.create 31_337 in
  let dag =
    Moldable_workloads.Random_dag.layered ~rng ~n_layers:6 ~width:8
      ~edge_prob:0.25 ~kind:Speedup.Kind_amdahl ()
  in
  let p = 64 in
  let base =
    (Failure_engine.run ~seed:1 ~failures:Failure_engine.never ~p
       (Online_scheduler.policy ~allocator:Allocator.algorithm2_per_model ~p
          ())
       dag)
      .Failure_engine.makespan
  in
  let qs = [ 0.0; 0.1; 0.2; 0.3; 0.5 ] in
  (* Every q-cell owns its failure stream through the explicit per-run seed,
     so the sweep fans out without reordering any random draw. *)
  let rows, _ =
    compare_seq_par ~name:"failure_sweep" ~cells:(List.length qs)
      ~equal:(fun a b ->
        List.for_all2
          (fun (aa, af, am) (ba, bf, bm) ->
            aa = ba && af = bf && Float.equal am bm)
          a b)
      pool
      (fun pool ->
        Pool.map_list ~chunk:1 pool
          (fun q ->
            let r =
              Failure_engine.run ~seed:1
                ~failures:(Failure_engine.bernoulli ~q)
                ~p
                (Online_scheduler.policy
                   ~allocator:Allocator.algorithm2_per_model ~p ())
                dag
            in
            (match Failure_engine.validate ~dag ~p r with
            | Ok () -> ()
            | Error es -> failwith (String.concat "; " es));
            ( r.Failure_engine.n_attempts,
              r.Failure_engine.n_failures,
              r.Failure_engine.makespan ))
          qs)
  in
  let tab =
    Texttab.create
      ~headers:
        [ "failure prob q"; "attempts"; "failures"; "makespan"; "slowdown";
          "1/(1-q)" ]
  in
  List.iter2
    (fun q (attempts, failures, makespan) ->
      Texttab.add_row tab
        [
          Printf.sprintf "%.2f" q;
          string_of_int attempts;
          string_of_int failures;
          Printf.sprintf "%.2f" makespan;
          Printf.sprintf "%.3f" (makespan /. base);
          Printf.sprintf "%.3f" (1. /. (1. -. q));
        ])
    qs rows;
  Texttab.print tab;
  (* Instrumentation of one representative failure run (q = 0.3), exported
     for offline analysis: counters + utilization timeline + queue depth +
     per-task waits.  Schema documented in EXPERIMENTS.md. *)
  let r =
    Failure_engine.run ~seed:1
      ~failures:(Failure_engine.bernoulli ~q:0.3)
      ~p
      (Online_scheduler.policy ~allocator:Allocator.algorithm2_per_model ~p
         ())
      dag
  in
  let m = r.Failure_engine.metrics in
  Printf.printf "\ninstrumented run (q=0.30): %s\n"
    (Format.asprintf "%a" Moldable_sim.Metrics.pp m);
  write_artifact "failures_metrics.json" (Moldable_sim.Metrics.to_json m);
  write_artifact "failures_utilization.csv"
    (Moldable_sim.Metrics.utilization_csv m);
  write_artifact "failures_queue_depth.csv"
    (Moldable_sim.Metrics.queue_depth_csv m);
  write_artifact "failures_tasks.csv" (Moldable_sim.Metrics.tasks_csv m)

(* --------------------------------------- Extension: tasks released over time *)

let release_times_section () =
  section
    "Extension — independent moldable tasks released over time (the online \
     setting of Ye et al. and the paper's future work): Poisson arrivals, \
     Algorithm 1 vs min-time list scheduling";
  let rng = Rng.create 8_642 in
  let n = 120 and p = 64 in
  let dag =
    Moldable_workloads.Random_dag.independent ~rng ~n
      ~kind:Speedup.Kind_amdahl ()
  in
  let releases = Array.make n 0. in
  let t = ref 0. in
  for i = 0 to n - 1 do
    t := !t +. Rng.exponential rng 0.4;
    releases.(i) <- !t
  done;
  let tab =
    Texttab.create
      ~headers:[ "policy"; "makespan"; "mean wait"; "max wait"; "utilization" ]
  in
  List.iter
    (fun (name, policy) ->
      let result = Engine.run ~release_times:releases ~p (policy ~p) dag in
      Validate.check_exn ~dag result.Engine.schedule;
      let m = Metrics.of_result result in
      Texttab.add_row tab
        [
          name;
          Printf.sprintf "%.2f" m.Metrics.makespan;
          Printf.sprintf "%.3f" m.Metrics.mean_wait;
          Printf.sprintf "%.3f" m.Metrics.max_wait;
          Printf.sprintf "%.1f%%" (100. *. m.Metrics.average_utilization);
        ])
    [
      ( "Algorithm 1",
        fun ~p ->
          Online_scheduler.policy ~allocator:Allocator.algorithm2_per_model ~p
            () );
      ("min-time list", fun ~p -> Baselines.min_time_list ~p);
      ("sequential list", fun ~p -> Baselines.sequential_list ~p);
    ];
  Texttab.print tab

(* --------------------------------- Rigid vs moldable vs malleable regimes *)

let regimes_section () =
  section
    "Rigid vs moldable vs malleable (the taxonomy of the paper's \
     introduction): externally fixed allocations, Algorithm 1's moldable \
     allocations, and dynamically reallocated execution, on the same \
     workloads (ratios vs the Lemma 2 bound)";
  let rng = Rng.create 10_101 in
  let tab =
    Texttab.create
      ~headers:[ "workload"; "rigid (p_max)"; "moldable (Alg 1)"; "malleable" ]
  in
  List.iter
    (fun (name, dag) ->
      let p = 48 in
      let lb = (Bounds.compute ~p dag).Bounds.lower_bound in
      let rigid =
        Schedule.makespan
          (Online_scheduler.run ~allocator:Allocator.min_time ~p dag)
            .Engine.schedule
      in
      let moldable = Online_scheduler.makespan ~p dag in
      let malleable =
        (Malleable_engine.equal_share ~p dag).Malleable_engine.makespan
      in
      Texttab.add_row tab
        [
          name;
          Printf.sprintf "%.3f" (rigid /. lb);
          Printf.sprintf "%.3f" (moldable /. lb);
          Printf.sprintf "%.3f" (malleable /. lb);
        ])
    [
      ( "layered/amdahl",
        Moldable_workloads.Random_dag.layered ~rng ~n_layers:5 ~width:8
          ~edge_prob:0.25 ~kind:Speedup.Kind_amdahl () );
      ( "layered/comm",
        Moldable_workloads.Random_dag.layered ~rng ~n_layers:5 ~width:8
          ~edge_prob:0.25 ~kind:Speedup.Kind_communication () );
      ( "cholesky-7/amdahl",
        Moldable_workloads.Linalg.cholesky ~rng ~tiles:7
          ~kind:Speedup.Kind_amdahl () );
      ( "montage-16/general",
        Moldable_workloads.Scientific.montage ~rng ~width:16
          ~kind:Speedup.Kind_general () );
      ( "independent/roofline",
        Moldable_workloads.Random_dag.independent ~rng ~n:60
          ~kind:Speedup.Kind_roofline () );
    ];
  Texttab.print tab;
  print_string
    "Moldability recovers most of malleability's advantage over rigid \
     requirements\n— the paper's motivation for the moldable middle ground.\n"

(* ----------------------------------------- Offline clairvoyant comparison *)

let offline_section () =
  section
    "Offline clairvoyant comparison — the best of three critical-path list \
     schedules upper-bounds T_opt more tightly than the Lemma 2 lower bound; \
     the true competitive ratio of Algorithm 1 lies within [T/T_off, T/LB]";
  let rng = Rng.create 55_555 in
  let tab =
    Texttab.create
      ~headers:
        [ "workload"; "T(online)"; "T(cp best)"; "T(CPA)"; "T(search)"; "LB";
          "T/T_best"; "T/LB" ]
  in
  List.iter
    (fun (name, dag) ->
      let p = 64 in
      let online = Online_scheduler.makespan ~p dag in
      let _, off = Offline.best_of ~p ~schedulers:Offline.named dag in
      let cpa = Schedule.makespan (Cpa.schedule ~p dag).Engine.schedule in
      let search =
        Schedule.makespan
          (Offline.randomized_search ~restarts:48 ~rng ~p dag).Engine.schedule
      in
      let best_off = Float.min (Float.min off search) cpa in
      let lb = (Bounds.compute ~p dag).Bounds.lower_bound in
      Texttab.add_row tab
        [
          name;
          Printf.sprintf "%.2f" online;
          Printf.sprintf "%.2f" off;
          Printf.sprintf "%.2f" cpa;
          Printf.sprintf "%.2f" search;
          Printf.sprintf "%.2f" lb;
          Printf.sprintf "%.3f" (online /. best_off);
          Printf.sprintf "%.3f" (online /. lb);
        ])
    [
      ( "layered/amdahl",
        Moldable_workloads.Random_dag.layered ~rng ~n_layers:6 ~width:8
          ~edge_prob:0.25 ~kind:Speedup.Kind_amdahl () );
      ( "cholesky-8/amdahl",
        Moldable_workloads.Linalg.cholesky ~rng ~tiles:8
          ~kind:Speedup.Kind_amdahl () );
      ( "lu-7/general",
        Moldable_workloads.Linalg.lu ~rng ~tiles:7 ~kind:Speedup.Kind_general
          () );
      ( "montage-24/comm",
        Moldable_workloads.Scientific.montage ~rng ~width:24
          ~kind:Speedup.Kind_communication () );
      ( "epigenomics-6x10/general",
        Moldable_workloads.Scientific.epigenomics ~rng ~lanes:6 ~fanout:10
          ~kind:Speedup.Kind_general () );
    ];
  Texttab.print tab

(* -------------------------------------------------- Lemma instrumentation *)

let lemmas_section () =
  section
    "Proof-framework instrumentation — Lemmas 3, 4 and 5 evaluated on every \
     Algorithm 1 run of a mixed batch (all must hold)";
  let rng = Rng.create 424242 in
  let total = ref 0 and held = ref 0 in
  List.iter
    (fun kind ->
      let mu = Mu.default kind in
      for _ = 1 to 15 do
        let dag =
          Moldable_workloads.Random_dag.layered ~rng ~n_layers:5 ~width:6
            ~edge_prob:0.3 ~kind ()
        in
        let p = Rng.int_range rng 8 128 in
        let sched =
          (Online_scheduler.run ~allocator:(Allocator.algorithm2 ~mu) ~p dag)
            .Engine.schedule
        in
        let report = Lemmas.verify ~mu ~dag sched in
        incr total;
        if report.Lemmas.all_hold then incr held
      done)
    [ Speedup.Kind_roofline; Speedup.Kind_communication; Speedup.Kind_amdahl;
      Speedup.Kind_general ];
  Printf.printf "Lemma 3/4/5 inequalities held on %d / %d runs.\n" !held !total;
  assert (!held = !total)

(* ------------------------------------------------- Decision-level tracing *)

let tracing_section pool () =
  section
    "Decision-level tracing — allocation provenance, execution spans and \
     ratio accounting on a traced Algorithm 1 run (Tracer.null runs are \
     schedule-identical and pay only a branch per hook)";
  let rng = Rng.create 20_230_829 in
  let p = 64 in
  let dag =
    Moldable_workloads.Linalg.cholesky ~rng ~tiles:8 ~kind:Speedup.Kind_amdahl
      ()
  in
  let label i = (Dag.task dag i).Task.label in
  let tracer = Moldable_sim.Tracer.create () in
  let traced = Online_scheduler.run_instrumented ~tracer ~p dag in
  let untraced = Online_scheduler.run_instrumented ~p dag in
  (* Tracing must be observation-only. *)
  assert (
    Float.equal
      (Schedule.makespan traced.Sim_core.schedule)
      (Schedule.makespan untraced.Sim_core.schedule));
  Printf.printf "traced run: %d decisions, %d spans, %d instants\n"
    (Moldable_sim.Tracer.n_decisions tracer)
    (Moldable_sim.Tracer.n_spans tracer)
    (List.length (Moldable_sim.Tracer.instants tracer));
  (* The capped decisions are the interesting provenance: print one. *)
  (match
     List.find_opt
       (fun (d : Moldable_sim.Tracer.decision) -> d.Moldable_sim.Tracer.cap_applied)
       (Moldable_sim.Tracer.decisions tracer)
   with
  | Some d ->
    Printf.printf "\nexample capped decision:\n%s"
      (Format.asprintf "%a" Moldable_sim.Tracer.pp_decision d)
  | None -> print_string "\n(no decision hit the ceil(mu P) cap)\n");
  Printf.printf "\nself-profile of the traced run:\n%s"
    (Format.asprintf "%a" Moldable_sim.Tracer.pp_profile tracer);
  write_artifact "trace_cholesky_chrome.json"
    (Moldable_viz.Chrome_trace.of_run ~label tracer traced.Sim_core.metrics);
  write_artifact "trace_cholesky_gantt.svg"
    (Moldable_viz.Svg.of_schedule ~label traced.Sim_core.schedule);
  (* Ratio accounting across workload families, checked against Table 1.
     Instance generation keeps the caller's RNG order; the (run, bound)
     cells fan out. *)
  let ratio_specs =
    List.concat_map
      (fun kind ->
        [
          ( "layered",
            Moldable_workloads.Random_dag.layered ~rng ~n_layers:6 ~width:8
              ~edge_prob:0.25 ~kind () );
          ( "cholesky",
            Moldable_workloads.Linalg.cholesky ~rng ~tiles:7 ~kind () );
          ( "montage",
            Moldable_workloads.Scientific.montage ~rng ~width:16 ~kind () );
        ])
      [ Speedup.Kind_roofline; Speedup.Kind_communication;
        Speedup.Kind_amdahl; Speedup.Kind_general ]
  in
  let entries, _ =
    compare_seq_par ~name:"ratio_report" ~cells:(List.length ratio_specs)
      ~equal:(fun a b ->
        List.for_all2
          (fun (x : Ratio_report.entry) (y : Ratio_report.entry) ->
            String.equal x.Ratio_report.workload y.Ratio_report.workload
            && Float.equal x.Ratio_report.makespan y.Ratio_report.makespan
            && Float.equal x.Ratio_report.lower_bound
                 y.Ratio_report.lower_bound
            && Float.equal x.Ratio_report.ratio y.Ratio_report.ratio
            && Bool.equal x.Ratio_report.within_bound
                 y.Ratio_report.within_bound)
          a b)
      pool
      (fun pool ->
        Pool.map_list ~chunk:1 pool
          (fun (workload, dag) ->
            let makespan = Online_scheduler.makespan ~p dag in
            Ratio_report.of_run ~workload ~p ~makespan dag)
          ratio_specs)
  in
  print_newline ();
  print_string (Ratio_report.table entries);
  assert (List.for_all (fun e -> e.Ratio_report.within_bound) entries);
  write_artifact "ratio_report.json" (Ratio_report.to_json entries);
  (* Null-tracer overhead probe: the same run with and without the tracer
     argument (both untraced) should cost the same. *)
  let time_reps f =
    let reps = 25 in
    let t0 = Clock.now () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Clock.now () -. t0) /. float_of_int reps
  in
  let t_default = time_reps (fun () -> Online_scheduler.run ~p dag) in
  let t_null =
    time_reps (fun () ->
        Online_scheduler.run_instrumented ~tracer:Moldable_sim.Tracer.null ~p
          dag)
  in
  let t_traced =
    time_reps (fun () ->
        Online_scheduler.run_instrumented
          ~tracer:(Moldable_sim.Tracer.create ())
          ~p dag)
  in
  Printf.printf
    "\nper-run cost: default %.6f s, explicit Tracer.null %.6f s, traced \
     %.6f s\n"
    t_default t_null t_traced

(* ------------------------------------------------------------ Scalability *)

let scalability () =
  section
    "Scalability — wall-clock time to build, bound and schedule growing \
     layered DAGs with Algorithm 1 (single core)";
  let rng = Rng.create 4_242 in
  let tab =
    Texttab.create
      ~headers:[ "tasks"; "edges"; "P"; "schedule time"; "tasks/s" ]
  in
  List.iter
    (fun (layers, width, p) ->
      let dag =
        Moldable_workloads.Random_dag.layered ~rng ~n_layers:layers ~width
          ~edge_prob:0.08 ~kind:Speedup.Kind_amdahl ()
      in
      (* Repeat until the measurement is long enough for Sys.time's
         resolution, then report the per-run average. *)
      let result = Online_scheduler.run ~p dag in
      Validate.check_exn ~dag result.Engine.schedule;
      let reps = ref 0 in
      let t0 = Sys.time () in
      while Sys.time () -. t0 < 0.2 do
        ignore (Online_scheduler.run ~p dag);
        incr reps
      done;
      let dt = (Sys.time () -. t0) /. float_of_int (max 1 !reps) in
      Texttab.add_row tab
        [
          string_of_int (Dag.n dag);
          string_of_int (Dag.n_edges dag);
          string_of_int p;
          Printf.sprintf "%.4f s" dt;
          Printf.sprintf "%.0f" (float_of_int (Dag.n dag) /. Float.max 1e-9 dt);
        ])
    [ (20, 20, 64); (50, 40, 128); (100, 100, 256); (200, 250, 512) ];
  Texttab.print tab

(* --------------------------------------------- Scalability of the hot path *)

let scalability_hot_path pool () =
  section
    "Scalability (hot path) — heap-backed ready queue + analysis cache vs \
     the seed's sorted-list reference policy, on DAGs up to 10^5 tasks and \
     platforms up to P = 10^5.  'per task' is scheduling overhead divided by \
     the number of tasks.";
  (* The timed runs stay on a single domain — racing them across workers
     would corrupt the per-row wall clocks; the pool only accelerates the
     feasibility validation of the large schedules. *)
  let time_run f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let tab =
    Texttab.create
      ~headers:
        [ "workload"; "tasks"; "P"; "heap"; "per task"; "sorted list";
          "speedup" ]
  in
  let acceptance = ref None in
  let row ~name ~dag ~p ~with_reference =
    let n = Dag.n dag in
    let heap, t_heap =
      time_run (fun () ->
          Engine.run ~p
            (Online_scheduler.policy ~allocator:Allocator.algorithm2_per_model
               ~p ())
            dag)
    in
    if n <= 10_000 then Validate.check_exn ~pool ~dag heap.Engine.schedule;
    let record_row reference_s =
      scaling_rows :=
        { sc_workload = name; sc_tasks = n; sc_p = p; sc_heap_s = t_heap;
          sc_reference_s = reference_s }
        :: !scaling_rows
    in
    let reference =
      if with_reference then begin
        let r, t_ref =
          time_run (fun () ->
              Engine.run ~p
                (Online_scheduler.policy_reference
                   ~allocator:Allocator.algorithm2_per_model ~p ())
                dag)
        in
        (* The two policies must agree; the bench would be meaningless
           otherwise. *)
        assert (
          Float.equal
            (Schedule.makespan heap.Engine.schedule)
            (Schedule.makespan r.Engine.schedule));
        Some t_ref
      end
      else None
    in
    record_row reference;
    Texttab.add_row tab
      [
        name;
        string_of_int n;
        string_of_int p;
        Printf.sprintf "%.3f s" t_heap;
        Printf.sprintf "%.2f us" (1e6 *. t_heap /. float_of_int n);
        (match reference with
        | Some t -> Printf.sprintf "%.3f s" t
        | None -> "-");
        (match reference with
        | Some t ->
          let s = t /. Float.max 1e-9 t_heap in
          if name = "wide independent" && n = 100_000 && p = 256 then
            acceptance := Some s;
          Printf.sprintf "%.1fx" s
        | None -> "-");
      ]
  in
  let rng = Rng.create 77_777 in
  (* Wide independent sets: every task is ready at t = 0, so the ready queue
     reaches its maximum size and the sorted list degenerates to O(n^2). *)
  List.iter
    (fun (n, p, with_reference) ->
      let dag =
        Moldable_workloads.Random_dag.independent ~rng ~n
          ~kind:Speedup.Kind_amdahl ()
      in
      row ~name:"wide independent" ~dag ~p ~with_reference)
    [ (1_000, 256, true); (10_000, 256, true); (100_000, 256, true);
      (100_000, 100_000, false) ];
  Texttab.add_sep tab;
  (* Deep chain of Theorem 9 tasks, t(p) = 1 / (lg p + 1): one ready task at
     a time, so this isolates the per-task analysis cost of an Arbitrary
     speedup (O(P) scan, cached vs recomputed). *)
  let theorem9_time p = 1. /. ((log (float_of_int p) /. log 2.) +. 1.) in
  List.iter
    (fun (n, p) ->
      let tasks =
        List.init n (fun id ->
            Task.make ~id
              (Speedup.Arbitrary { name = "thm9"; time = theorem9_time }))
      in
      let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
      let dag = Dag.create ~tasks ~edges in
      row ~name:"thm-9 chain" ~dag ~p ~with_reference:true)
    [ (10_000, 256); (100_000, 256) ];
  Texttab.add_sep tab;
  (* Layered random DAGs: precedence keeps the ready set at ~width tasks, the
     regime the seed was written for. *)
  List.iter
    (fun (layers, width, p) ->
      let dag =
        Moldable_workloads.Random_dag.layered ~rng ~n_layers:layers ~width
          ~edge_prob:0.02 ~kind:Speedup.Kind_general ()
      in
      row ~name:"layered random" ~dag ~p ~with_reference:true)
    [ (200, 100, 1_024); (2_000, 100, 1_024) ];
  Texttab.print tab;
  print_string
    "\nThe heap's win is asymptotic: it dominates when the ready set is \
     large (wide\nsets: the sorted list is quadratic), roughly halves the \
     chain case (analysis\ncache: one O(P) Arbitrary scan per task instead \
     of two), and concedes a small\nconstant factor when precedence keeps \
     the ready set tiny (layered rows).\n";
  (match !acceptance with
  | Some s when s >= 10. ->
    Printf.printf
      "\nAcceptance: heap policy is %.0fx faster than the sorted list on the \
       10^5-task\nwide set at P = 256 (criterion: >= 10x).\n"
      s
  | Some s ->
    Printf.printf "\nACCEPTANCE FAILED: speedup %.1fx < 10x\n" s;
    exit 1
  | None ->
    print_string "\nACCEPTANCE FAILED: 10^5/P=256 row did not run\n";
    exit 1)

(* ------------------------------------------------- Allocation-lean core *)

(* Before/after rows of the alloc_lean section, recorded into
   BENCH_scaling.json: per-run wall clock and minor-heap words for the
   reference event loop, the new core with full recording, and the new core
   in lean mode on a reused arena. *)
type alloc_lean_row = {
  al_mode : string;
  al_tasks : int;
  al_p : int;
  al_wall_s : float;
  al_minor_words : float;
}

let alloc_lean_rows : alloc_lean_row list ref = ref []

let alloc_lean_section () =
  section
    "Allocation-lean core — flat float-keyed event heap, int-encoded \
     events and a reused run arena vs the boxed reference event loop \
     (run_reference).  Gates: lean runs allocate >= 5x fewer minor words \
     and finish >= 1.5x faster on the 10^5-task workload, with identical \
     schedules.";
  let p = 256 and n = 100_000 in
  let rng = Rng.create 424_243 in
  (* Narrow moldable tasks (roofline, ptilde <= 4): processor blocks stay
     small, so the irreducible per-task cost both paths share — the procs
     arrays the schedule retains, the allocator's probes — is a small
     fraction of the reference loop's boxed-event/cons-list overhead, which
     is exactly what this section isolates. *)
  let dag =
    Moldable_workloads.Random_dag.independent
      ~spec:{ Moldable_workloads.Params.default with ptilde_max = 4 }
      ~rng ~n ~kind:Speedup.Kind_roofline ()
  in
  let fresh_policy () =
    Online_scheduler.policy ~allocator:Allocator.algorithm2_per_model ~p ()
  in
  (* Single-domain section: [Gc.minor_words] reads this domain's allocation
     counter, so the word count is exact, not sampled.  Each mode runs
     [reps] times and keeps its fastest rep (standard best-of-N against
     scheduler noise), after a full major collection so no mode pays for a
     predecessor's garbage. *)
  let reps = max 5 !reps_flag in
  let measure mode f =
    let best_wall = ref infinity and best_words = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      Gc.full_major ();
      let g0 = Gc.minor_words () in
      let t0 = Clock.now () in
      let r = f () in
      let wall = Clock.now () -. t0 in
      let words = Gc.minor_words () -. g0 in
      if wall < !best_wall then begin
        best_wall := wall;
        result := Some r
      end;
      if words < !best_words then best_words := words
    done;
    alloc_lean_rows :=
      { al_mode = mode; al_tasks = n; al_p = p; al_wall_s = !best_wall;
        al_minor_words = !best_words }
      :: !alloc_lean_rows;
    (Option.get !result, !best_wall, !best_words)
  in
  let r_ref, t_ref, w_ref =
    measure "reference" (fun () ->
        Sim_core.run_reference ~p (fresh_policy ()) dag)
  in
  let r_full, t_full, w_full =
    measure "full" (fun () -> Sim_core.run ~p (fresh_policy ()) dag)
  in
  let arena = Sim_core.Arena.create () in
  (* One warm-up run grows the arena to its (p, n) high-water mark; the
     measured runs then reuse every array. *)
  ignore (Sim_core.run ~arena ~lean:true ~p (fresh_policy ()) dag);
  let r_lean, t_lean, w_lean =
    measure "lean_arena" (fun () ->
        Sim_core.run ~arena ~lean:true ~p (fresh_policy ()) dag)
  in
  (* The three paths must agree placement-by-placement; the qcheck
     differential suite pins this across rules/allocators/failure models,
     and this assert extends the pin to the 10^5-task scale. *)
  let same_placements a b =
    Schedule.n a = Schedule.n b
    && List.for_all
         (fun i ->
           let pa = Schedule.placement a i and pb = Schedule.placement b i in
           Float.equal pa.Schedule.start pb.Schedule.start
           && Float.equal pa.Schedule.finish pb.Schedule.finish
           && pa.Schedule.nprocs = pb.Schedule.nprocs)
         (List.init (Schedule.n a) (fun i -> i))
  in
  if
    not
      (same_placements r_ref.Sim_core.schedule r_full.Sim_core.schedule
      && same_placements r_ref.Sim_core.schedule r_lean.Sim_core.schedule)
  then failwith "alloc_lean: schedules diverged between core variants";
  let tab =
    Texttab.create
      ~headers:
        [ "mode"; "wall"; "minor words"; "words/task"; "vs reference" ]
  in
  let per_task w = w /. float_of_int n in
  List.iter
    (fun (mode, t, w) ->
      Texttab.add_row tab
        [
          mode;
          Printf.sprintf "%.3f s" t;
          Printf.sprintf "%.2e" w;
          Printf.sprintf "%.0f" (per_task w);
          Printf.sprintf "%.1fx fewer, %.1fx faster" (w_ref /. Float.max 1. w)
            (t_ref /. Float.max 1e-9 t);
        ])
    [ ("reference", t_ref, w_ref); ("full", t_full, w_full);
      ("lean_arena", t_lean, w_lean) ];
  Texttab.print tab;
  (* Timing-free artifact (byte-identical at any --jobs), so CI can cmp it
     across job counts like the sweep outcomes. *)
  write_artifact "alloc_lean_check.json"
    (Printf.sprintf
       "{\n  \"schema\": \"moldable/alloc_lean_check/v1\",\n  \"workload\": \
        \"wide independent roofline (ptilde <= 4)\",\n  \"tasks\": %d,\n  \"p\": \
        %d,\n  \"makespan\": %.17g,\n  \"n_attempts\": %d,\n  \
        \"modes_agree\": true\n}\n"
       n p r_lean.Sim_core.makespan r_lean.Sim_core.n_attempts);
  let words_ratio = w_ref /. Float.max 1. w_lean in
  let wall_ratio = t_ref /. Float.max 1e-9 t_lean in
  if words_ratio >= 5. && wall_ratio >= 1.5 then
    Printf.printf
      "\nAcceptance: lean arena run allocates %.1fx fewer minor words and \
       is %.1fx faster\nthan run_reference on the 10^5-task workload \
       (criteria: >= 5x words, >= 1.5x wall).\n"
      words_ratio wall_ratio
  else begin
    Printf.printf
      "\nACCEPTANCE FAILED: %.1fx fewer minor words (need >= 5x), %.2fx \
       wall (need >= 1.5x)\n"
      words_ratio wall_ratio;
    exit 1
  end

(* ------------------------------------------------------- Service daemon *)

(* Loopback probe of the scheduler daemon, recorded into
   BENCH_scaling.json: pipelined submission throughput, client round-trip
   and server-side decision-latency percentiles, protocol error count. *)
type service_probe = {
  sv_tasks : int;
  sv_p : int;
  sv_submits_per_s : float;
  sv_rtt_p50_s : float;
  sv_rtt_p99_s : float;
  sv_decision_p50_s : float;
  sv_decision_p99_s : float;
  sv_protocol_errors : float;
}

let service_probe : service_probe option ref = ref None

let service_section () =
  section
    "Service daemon — the wire protocol end to end over loopback TCP: \
     per-request round-trip latency, pipelined submission throughput, and \
     the drained makespan checked against the local batch run.  Gates: >= \
     10k pipelined submissions/s with zero protocol errors.";
  let module Server = Moldable_service.Server in
  let module Client = Moldable_service.Client in
  let module Protocol = Moldable_service.Protocol in
  let module Json = Moldable_obs.Json in
  let module R = Moldable_obs.Registry in
  let p = 64 in
  let speedup = Speedup.Roofline { w = 1.; ptilde = 4 } in
  let open_spec =
    {
      Protocol.o_p = p; o_algorithm = `Original; o_priority = "fifo";
      o_seed = 0; o_max_attempts = None; o_failures = `Never;
    }
  in
  let registry = R.create () in
  let config =
    { (Server.default_config ~registry ()) with Server.sessions = 2 }
  in
  let listener =
    match Server.listen_tcp ~host:"127.0.0.1" ~port:0 with
    | Ok l -> l
    | Error e -> failwith ("service: " ^ e)
  in
  let port = Option.get (Server.port listener) in
  let stop = Atomic.make false in
  let daemon = Domain.spawn (fun () -> Server.serve ~stop config listener) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join daemon)
  @@ fun () ->
  (* --- round-trip latency: one request, one response, timed each way *)
  let n_probe = 2_000 in
  let rtts = Array.make n_probe 0. in
  (match Client.connect_tcp ~host:"127.0.0.1" ~port () with
  | Error e -> failwith ("service: " ^ e)
  | Ok c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let rpc_exn req =
      match Client.rpc c req with
      | Ok resp -> resp
      | Error e -> failwith ("service: " ^ e)
    in
    ignore (rpc_exn (Protocol.Open open_spec));
    for i = 0 to n_probe - 1 do
      let submit =
        Protocol.Submit
          {
            Protocol.s_label = ""; s_speedup = speedup; s_deps = [];
            s_release = 0.;
          }
      in
      let t0 = Clock.now () in
      ignore (rpc_exn submit);
      rtts.(i) <- Clock.now () -. t0
    done;
    ignore (rpc_exn Protocol.Drain));
  Array.sort compare rtts;
  let pct q = rtts.(min (n_probe - 1) (int_of_float (q *. float_of_int n_probe))) in
  let rtt_p50 = pct 0.50 and rtt_p99 = pct 0.99 in
  (* --- pipelined throughput: all submit lines written without waiting,
     a reader domain draining responses concurrently *)
  let n_pipe = 50_000 in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  let line_of req =
    match Protocol.request_to_json req with
    | Ok j -> Json.to_string_compact j ^ "\n"
    | Error e -> failwith ("service: " ^ e)
  in
  let send s =
    let b = Bytes.of_string s in
    let len = Bytes.length b in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write fd b !off (len - !off)
    done
  in
  (* blocking char-at-a-time line read; only used for the four
     single-threaded exchanges, which are all short *)
  let read_line () =
    let buf = Buffer.create 256 in
    let byte = Bytes.create 1 in
    let rec go () =
      match Unix.read fd byte 0 1 with
      | 0 -> failwith "service: connection closed"
      | _ ->
        if Bytes.get byte 0 = '\n' then Buffer.contents buf
        else begin
          Buffer.add_char buf (Bytes.get byte 0);
          go ()
        end
    in
    go ()
  in
  let response () =
    match Json.of_string (read_line ()) with
    | Ok j -> j
    | Error e -> failwith ("service: " ^ e)
  in
  let expect_ok ctx resp =
    match Json.member "ok" resp with
    | Some (Json.Bool true) -> resp
    | _ -> failwith ("service: " ^ ctx ^ ": " ^ Json.to_string_compact resp)
  in
  send (line_of (Protocol.Open open_spec));
  ignore (expect_ok "open" (response ()));
  let payload = Buffer.create (n_pipe * 64) in
  let submit_line =
    line_of
      (Protocol.Submit
         {
           Protocol.s_label = ""; s_speedup = speedup; s_deps = [];
           s_release = 0.;
         })
  in
  for _ = 1 to n_pipe do
    Buffer.add_string payload submit_line
  done;
  let data = Buffer.to_bytes payload in
  let len = Bytes.length data in
  let t0 = Clock.now () in
  let reader =
    Domain.spawn (fun () ->
        let buf = Bytes.create 65536 in
        let seen = ref 0 in
        while !seen < n_pipe do
          match Unix.read fd buf 0 65536 with
          | 0 -> failwith "service: connection closed mid-pipeline"
          | k ->
            for i = 0 to k - 1 do
              if Bytes.get buf i = '\n' then incr seen
            done
        done;
        !seen)
  in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd data !off (min 65536 (len - !off))
  done;
  let n_seen = Domain.join reader in
  let wall = Clock.now () -. t0 in
  assert (n_seen = n_pipe);
  let submits_per_s = float_of_int n_pipe /. Float.max 1e-9 wall in
  send (line_of Protocol.Drain);
  let drained = expect_ok "drain" (response ()) in
  let server_mk =
    match Option.bind (Json.member "makespan" drained) Json.to_float with
    | Some mk -> mk
    | None -> failwith "service: drain response lacks a makespan"
  in
  send (line_of Protocol.Close);
  ignore (response ());
  (* The pipelined workload replayed locally must agree exactly. *)
  let dag =
    Dag.create
      ~tasks:(List.init n_pipe (fun id -> Task.make ~id speedup))
      ~edges:[]
  in
  let local = Online_scheduler.run ~p dag in
  if not (Float.equal (Schedule.makespan local.Engine.schedule) server_mk)
  then failwith "service: drained makespan diverged from the local run";
  (* --- server-side truth: decision latency histogram, protocol errors *)
  let snap = R.snapshot registry in
  let find name =
    List.find_opt (fun m -> m.R.ms_name = name) snap
  in
  let decision_p50, decision_p99 =
    match find "moldable_service_decision_latency_seconds" with
    | Some { R.ms_value = R.Hist_v h; _ } -> (h.R.p50, h.R.p99)
    | _ -> (Float.nan, Float.nan)
  in
  let protocol_errors =
    match find "moldable_service_protocol_errors" with
    | Some { R.ms_value = R.Counter_v v; _ } -> v
    | _ -> Float.nan
  in
  service_probe :=
    Some
      {
        sv_tasks = n_pipe; sv_p = p; sv_submits_per_s = submits_per_s;
        sv_rtt_p50_s = rtt_p50; sv_rtt_p99_s = rtt_p99;
        sv_decision_p50_s = decision_p50; sv_decision_p99_s = decision_p99;
        sv_protocol_errors = protocol_errors;
      };
  let tab = Texttab.create ~headers:[ "probe"; "value" ] in
  List.iter
    (fun (k, v) -> Texttab.add_row tab [ k; v ])
    [
      ("round-trip p50", Printf.sprintf "%.1f us" (1e6 *. rtt_p50));
      ("round-trip p99", Printf.sprintf "%.1f us" (1e6 *. rtt_p99));
      ("decision p50", Printf.sprintf "%.1f us" (1e6 *. decision_p50));
      ("decision p99", Printf.sprintf "%.1f us" (1e6 *. decision_p99));
      ( "pipelined throughput",
        Printf.sprintf "%.0f submissions/s (%d tasks in %.3f s)"
          submits_per_s n_pipe wall );
      ("protocol errors", Printf.sprintf "%.0f" protocol_errors);
      ("drained makespan", Printf.sprintf "%.6g (= local run)" server_mk);
    ];
  Texttab.print tab;
  if submits_per_s >= 10_000. && protocol_errors = 0. then
    Printf.printf
      "\nAcceptance: %.0f pipelined submissions/s over loopback with zero \
       protocol errors\n(criteria: >= 10k/s, 0 errors), drained makespan \
       identical to the local batch run.\n"
      submits_per_s
  else begin
    Printf.printf
      "\nACCEPTANCE FAILED: %.0f submissions/s (need >= 10k), %.0f \
       protocol errors (need 0)\n"
      submits_per_s protocol_errors;
    exit 1
  end

(* ----------------------------------------------- Parallel experiment sweep *)

(* The multicore fan-out acceptance section: a full (workload x policy x
   instance) campaign evaluated once sequentially and once on the domain
   pool.  The two runs must agree bit-for-bit (every cell is seeded before
   dispatch), and on a multicore runner jobs=2 must be >= 1.5x faster.  The
   outcome artifact contains no timings, so it is byte-identical at any job
   count — CI diffs a --jobs 1 run against a --jobs 2 run. *)

let outcomes_json ~cells outcomes =
  let jf = Printf.sprintf "%.17g" in
  let jlist xs = String.concat ", " (List.map jf xs) in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"cells\": %d,\n" cells);
  Buffer.add_string buf "  \"outcomes\": [";
  List.iteri
    (fun i (o : Experiment.outcome) ->
      if i > 0 then Buffer.add_string buf ",";
      let s = o.Experiment.summary in
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"workload\": %S, \"policy\": %S, \"p\": %d, \"n\": %d, \
            \"mean\": %s, \"stddev\": %s, \"min\": %s, \"median\": %s, \
            \"p95\": %s, \"max\": %s, \"ratios\": [%s], \"makespans\": [%s]}"
           o.Experiment.workload o.Experiment.policy o.Experiment.p
           s.Stats.n (jf s.Stats.mean) (jf s.Stats.stddev) (jf s.Stats.min)
           (jf s.Stats.median) (jf s.Stats.p95) (jf s.Stats.max)
           (jlist o.Experiment.ratios)
           (jlist o.Experiment.makespans)))
    outcomes;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let parallel_sweep pool () =
  section
    (Printf.sprintf
       "Parallel sweep — the empirical campaign fanned out over a domain \
        pool (jobs=%d, %d cores available): per-cell Rng.split seeding \
        keeps the outcomes bit-identical to the sequential run"
       (Pool.jobs pool)
       (Domain.recommended_domain_count ()));
  let seeds = Rng.create 777_000_001 in
  let policies = Experiment.default_policies in
  (* The campaign scales with --cells: the historical 200-cell default (16
     layered + 4 cholesky instances per kind) finishes in ~35 ms, which is
     below domain-pool overhead, so the >= 1.5x fan-out gate measured noise
     (the committed BENCH_scaling.json showed 0.97x at jobs=2).  Layered
     instances are the scaling knob; cholesky stays at 4 sizes per kind. *)
  let dags_per_kind =
    max 20 (!cells_flag / (List.length policies * 2))
  in
  let n_layered = max 16 (dags_per_kind - 4) in
  let campaign =
    List.concat_map
      (fun kind ->
        (* One sibling generator per workload family, split before any
           generation so the campaign is a pure function of the seed. *)
        let rngs = Rng.split_n seeds 2 in
        [
          ( Speedup.kind_name kind ^ "/layered",
            List.init n_layered (fun _ ->
                Moldable_workloads.Random_dag.layered ~rng:rngs.(0)
                  ~n_layers:7 ~width:10 ~edge_prob:0.25 ~kind ()) );
          ( Speedup.kind_name kind ^ "/cholesky",
            List.init 4 (fun i ->
                Moldable_workloads.Linalg.cholesky ~rng:rngs.(1)
                  ~tiles:(5 + i) ~kind ()) );
        ])
      [ Speedup.Kind_amdahl; Speedup.Kind_communication ]
  in
  let cells =
    List.length policies
    * List.fold_left (fun a (_, dags) -> a + List.length dags) 0 campaign
  in
  let outcomes, row =
    compare_seq_par ~name:"parallel_sweep" ~cells
      ~equal:(List.for_all2 Experiment.equal_outcome)
      pool
      (fun pool ->
        List.concat_map
          (fun (workload, dags) ->
            Experiment.evaluate ~pool ~p:64 ~workload ~policies dags)
          campaign)
  in
  print_string (Report.table outcomes);
  write_artifact "parallel_sweep_results.json" (outcomes_json ~cells outcomes);
  let speedup = row.pl_seq_s /. Float.max 1e-9 row.pl_par_s in
  if Pool.jobs pool < 2 then
    print_string
      "\nAcceptance: skipped (sequential run; pass --jobs 2 or more).\n"
  else if Domain.recommended_domain_count () < 2 then
    Printf.printf
      "\nAcceptance: skipped (single-core runner; measured %.2fx at \
       jobs=%d).\n"
      speedup (Pool.jobs pool)
  else if speedup >= 1.5 then
    Printf.printf
      "\nAcceptance: parallel sweep is %.2fx faster at jobs=%d than the \
       sequential run on the same campaign (criterion: >= 1.5x).\n"
      speedup (Pool.jobs pool)
  else begin
    Printf.printf "\nACCEPTANCE FAILED: parallel speedup %.2fx < 1.5x\n"
      speedup;
    exit 1
  end

(* ------------------------------------------- Exact rational shadow oracle *)

(* Differential acceptance gate: every float comparison the online scheduler
   made — completion stamps, batch merges, precedence, occupancy, Algorithm
   2 allocations, the Lemma 2 bound and the ratio denominator — is replayed
   in exact rational arithmetic (lib/exact).  Cells cover random (model,
   DAG, P) triples for all five speedup families plus the Figure 1 and
   Figure 3 adversarial constructions; each cell is a pure function of its
   seed, so the sweep fans out deterministically.  One unexplained
   divergence fails the bench. *)

let exact_oracle pool () =
  section
    "Exact rational shadow oracle — float scheduler runs replayed \
     comparison-by-comparison in exact arithmetic; divergences must be \
     explained by the documented float tolerances";
  let module Shadow = Moldable_exact.Shadow in
  (* One cell: run the float scheduler, replay it exactly, summarize.  The
     summary tuple is structurally comparable, so the seq-vs-par determinism
     check of [compare_seq_par] applies verbatim. *)
  let check_cell ~name ~mu ~dag ~p result =
    let r = Shadow.check ~mu ~dag ~p result in
    ( name,
      r.Shadow.checks,
      r.Shadow.n_explained,
      r.Shadow.n_unexplained,
      (if r.Shadow.divergences = [] then "" else Shadow.report_to_json r) )
  in
  let random_cell seed =
    let rng = Rng.create (0x0AC1E + seed) in
    let kind =
      match Rng.int rng 5 with
      | 0 -> Speedup.Kind_roofline
      | 1 -> Speedup.Kind_communication
      | 2 -> Speedup.Kind_amdahl
      | 3 -> Speedup.Kind_general
      | _ -> Speedup.Kind_power
    in
    let dag =
      match Rng.int rng 3 with
      | 0 ->
        Moldable_workloads.Random_dag.layered ~rng
          ~n_layers:(Rng.int_range rng 2 6)
          ~width:(Rng.int_range rng 1 8)
          ~edge_prob:(Rng.float_range rng 0.05 0.6)
          ~kind ()
      | 1 ->
        Moldable_workloads.Random_dag.independent ~rng
          ~n:(Rng.int_range rng 1 30) ~kind ()
      | _ ->
        Moldable_workloads.Random_dag.erdos_renyi ~rng
          ~n:(Rng.int_range rng 2 25)
          ~edge_prob:(Rng.float_range rng 0.05 0.4)
          ~kind ()
    in
    let p = Rng.int_range rng 2 128 in
    let mu = Mu.default kind in
    (* A slice of the cells exercises the failure/retry and release-time
       paths, whose batch merges are the trickiest float comparisons. *)
    let with_failures = seed mod 5 = 0 in
    let release_times =
      if seed mod 7 = 0 then
        Some (Array.init (Dag.n dag) (fun _ -> Rng.float_range rng 0. 5.))
      else None
    in
    let result =
      Online_scheduler.run_instrumented
        ~allocator:(Allocator.algorithm2 ~mu)
        ?release_times ~seed
        ~failures:
          (if with_failures then Sim_core.bernoulli ~q:0.15 else Sim_core.never)
        ~max_attempts:64 ~p dag
    in
    check_cell
      ~name:
        (Printf.sprintf "random-%04d/%s%s" seed (Speedup.kind_name kind)
           (if with_failures then "+failures" else ""))
      ~mu ~dag ~p result
  in
  let adversarial_cells () =
    let of_instance (inst : Instances.t) =
      let result =
        Online_scheduler.run_instrumented
          ~allocator:(Allocator.algorithm2 ~mu:inst.Instances.mu)
          ~p:inst.Instances.p inst.Instances.dag
      in
      check_cell ~name:inst.Instances.name ~mu:inst.Instances.mu
        ~dag:inst.Instances.dag ~p:inst.Instances.p result
    in
    let of_chains ell =
      let inst = Chains.build ~ell in
      let mu = Mu.default Speedup.Kind_arbitrary in
      let result =
        Online_scheduler.run_instrumented
          ~allocator:(Allocator.algorithm2 ~mu)
          ~p:inst.Chains.p inst.Chains.dag
      in
      check_cell
        ~name:(Printf.sprintf "thm9-chains(l=%d)" ell)
        ~mu ~dag:inst.Chains.dag ~p:inst.Chains.p result
    in
    List.map of_instance
      (List.map (fun p -> Instances.roofline ~p) [ 100; 1000 ]
      @ List.map (fun p -> Instances.communication ~p) [ 100; 500 ]
      @ List.map (fun k -> Instances.amdahl ~k) [ 10; 30 ]
      @ List.map (fun k -> Instances.general ~k) [ 10; 30 ])
    @ List.map of_chains [ 1; 2 ]
  in
  let n_random = 1000 in
  let seeds = List.init n_random (fun i -> i) in
  let cells, _ =
    compare_seq_par ~name:"exact_oracle"
      ~cells:(n_random + 10)
      ~equal:(fun a b -> a = b)
      pool
      (fun pool ->
        Pool.map_list ~chunk:8 pool random_cell seeds @ adversarial_cells ())
  in
  let checks = List.fold_left (fun a (_, c, _, _, _) -> a + c) 0 cells in
  let explained = List.fold_left (fun a (_, _, e, _, _) -> a + e) 0 cells in
  let unexplained = List.fold_left (fun a (_, _, _, u, _) -> a + u) 0 cells in
  let flagged =
    List.filter (fun (_, _, _, _, json) -> json <> "") cells
  in
  Printf.printf
    "%d cells (%d random + %d adversarial), %d exact checks: %d explained \
     divergence(s), %d unexplained\n"
    (List.length cells) n_random
    (List.length cells - n_random)
    checks explained unexplained;
  List.iter
    (fun (name, _, e, u, _) ->
      Printf.printf "  flagged cell %s: %d explained, %d unexplained\n" name e
        u)
    flagged;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"cells\": %d,\n  \"checks\": %d,\n  \"n_explained\": %d,\n  \
        \"n_unexplained\": %d,\n  \"flagged\": ["
       (List.length cells) checks explained unexplained);
  List.iteri
    (fun i (name, _, _, _, json) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"cell\": %S, \"report\": %s}" name json))
    flagged;
  Buffer.add_string buf "\n  ]\n}\n";
  write_artifact "exact_oracle_divergences.json" (Buffer.contents buf);
  if unexplained > 0 then begin
    Printf.printf
      "\nACCEPTANCE FAILED: %d unexplained float-vs-exact divergence(s) — \
       see exact_oracle_divergences.json\n"
      unexplained;
    exit 1
  end
  else
    Printf.printf
      "\nAcceptance: zero unexplained divergences across %d cells (%d exact \
       checks; %d boundary divergence(s) explained by documented \
       tolerances).\n"
      (List.length cells) checks explained

(* -------------------------------- Original vs improved online algorithm *)

(* Side-by-side accounting of the two online algorithms: the proven-bound
   table (recomputed ICPP 2022 vs transcribed Perotin-Sun 2023 constants)
   and measured [T / LB] ratios on the adversarial constructions plus
   random workloads per speedup family.  Instance generation precedes the
   fan-out and every (instance -> two runs) cell is a pure function of its
   DAG, so the comparison artifact is byte-identical at any job count. *)

let improved_ratio pool () =
  section
    "Improved online algorithm (Perotin & Sun 2023) — proven bounds and \
     measured original-vs-improved ratios on adversarial and random \
     instances";
  assert (Improved_bounds.coherent ());
  let tab =
    Texttab.create
      ~headers:
        [ "model"; "mu"; "rho"; "original bound"; "improved bound"; "paper" ]
  in
  List.iter
    (fun (r : Improved_bounds.row) ->
      Texttab.add_row tab
        [
          Model_bounds.family_name r.Improved_bounds.family;
          Printf.sprintf "%.4f" r.Improved_bounds.mu;
          Printf.sprintf "%.4f" r.Improved_bounds.rho;
          Printf.sprintf "%.4f" r.Improved_bounds.original;
          Printf.sprintf "%.4f" r.Improved_bounds.improved;
          Printf.sprintf "%.2f" r.Improved_bounds.paper_improved;
        ])
    (Improved_bounds.table ());
  Texttab.print tab;
  print_newline ();
  let rng = Rng.create 27_182 in
  let random_specs =
    List.concat_map
      (fun kind ->
        List.init 8 (fun _ ->
            ( "random/" ^ Speedup.kind_name kind,
              64,
              Moldable_workloads.Random_dag.layered ~rng ~n_layers:6 ~width:8
                ~edge_prob:0.25 ~kind () )))
      [ Speedup.Kind_roofline; Speedup.Kind_communication;
        Speedup.Kind_amdahl; Speedup.Kind_general ]
  in
  let adversarial_specs =
    (* Named per instance: the Figure-1 constructions mix speedup families
       (sequential gadget tasks), so grouping by detected model alone would
       merge them into one "arbitrary" row. *)
    List.map
      (fun (inst : Instances.t) ->
        (inst.Instances.name, inst.Instances.p, inst.Instances.dag))
      [ Instances.roofline ~p:128; Instances.communication ~p:128;
        Instances.amdahl ~k:12; Instances.general ~k:12 ]
  in
  let specs = adversarial_specs @ random_specs in
  let cells, _ =
    compare_seq_par ~name:"improved_ratio"
      ~cells:(List.length specs)
      ~equal:(fun a b -> a = b)
      pool
      (fun pool ->
        Pool.map_list ~chunk:1 pool
          (fun (workload, p, dag) ->
            let kind = Ratio_report.kind_of_dag dag in
            let m_orig = Online_scheduler.makespan ~p dag in
            let m_impr =
              Schedule.makespan
                (Online_scheduler.run_improved ~p dag).Engine.schedule
            in
            let eo =
              Ratio_report.of_run ~model:kind ~workload ~p ~makespan:m_orig
                dag
            in
            let ei =
              Ratio_report.of_run ~model:kind
                ~proven_bound:(Ratio_report.improved_upper_bound kind)
                ~workload ~p ~makespan:m_impr dag
            in
            (eo, ei))
          specs)
  in
  print_newline ();
  let original = List.map fst cells and improved = List.map snd cells in
  let comparisons = Ratio_report.compare_runs ~original ~improved in
  print_string (Ratio_report.comparison_table comparisons);
  write_artifact "improved_ratio.json"
    (Ratio_report.comparison_to_json comparisons);
  if
    not
      (List.for_all (fun c -> c.Ratio_report.c_all_within) comparisons)
  then begin
    Printf.printf
      "\nACCEPTANCE FAILED: a measured worst ratio exceeds its proven \
       competitive ratio — see improved_ratio.json\n";
    exit 1
  end
  else
    Printf.printf
      "\nAcceptance: every measured worst ratio sits under its own proven \
       bound across %d instances.\n"
      (List.length specs)

(* ------------------------------------------------ Bechamel micro-benchmarks *)

let micro_benchmarks () =
  section
    "Micro-benchmarks (Bechamel) — implementation throughput, monotonic \
     clock, OLS ns/run";
  let open Bechamel in
  let rng0 = Rng.create 99 in
  let dag_small =
    Moldable_workloads.Random_dag.layered ~rng:rng0 ~n_layers:5 ~width:6
      ~edge_prob:0.3 ~kind:Speedup.Kind_general ()
  in
  let dag_large =
    Moldable_workloads.Random_dag.layered ~rng:rng0 ~n_layers:20 ~width:25
      ~edge_prob:0.15 ~kind:Speedup.Kind_amdahl ()
  in
  let chol =
    Moldable_workloads.Linalg.cholesky ~rng:rng0 ~tiles:10
      ~kind:Speedup.Kind_amdahl ()
  in
  let task_probe =
    Task.make ~id:0 (Speedup.General { w = 500.; ptilde = 300; d = 2.; c = 0.1 })
  in
  let tests =
    [
      Test.make ~name:"allocator: Algorithm 2, P=1024"
        (Staged.stage (fun () ->
             ignore
               ((Allocator.algorithm2 ~mu:0.2113).Allocator.allocate ~p:1024
                  task_probe)));
      Test.make ~name:"bounds: A_min/C_min on Cholesky-10 (220 tasks)"
        (Staged.stage (fun () -> ignore (Bounds.compute ~p:256 chol)));
      Test.make
        ~name:
          (Printf.sprintf "schedule: Algorithm 1, %d-task layered DAG, P=64"
             (Dag.n dag_small))
        (Staged.stage (fun () ->
             ignore (Online_scheduler.makespan ~p:64 dag_small)));
      Test.make
        ~name:
          (Printf.sprintf "schedule: Algorithm 1, %d-task layered DAG, P=256"
             (Dag.n dag_large))
        (Staged.stage (fun () ->
             ignore (Online_scheduler.makespan ~p:256 dag_large)));
      Test.make ~name:"theory: Table 1 optimization (4 families)"
        (Staged.stage (fun () -> ignore (Model_bounds.table1_upper ())));
      Test.make ~name:"adversary: equal-split rounds, l=4"
        (Staged.stage (fun () -> ignore (Chain_adversary.equal_split ~ell:4)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:true
           ~predictors:[| Measure.run |])
        instance raw
    in
    ols
  in
  let grouped = Test.make_grouped ~name:"moldable" ~fmt:"%s/%s" tests in
  let results = benchmark grouped in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
        if ns > 1e6 then Printf.printf "  %-55s %10.3f ms/run\n" name (ns /. 1e6)
        else if ns > 1e3 then
          Printf.printf "  %-55s %10.3f us/run\n" name (ns /. 1e3)
        else Printf.printf "  %-55s %10.1f ns/run\n" name ns
      | _ -> Printf.printf "  %-55s (no estimate)\n" name)
    results

(* -------------------------------------------------------------- Telemetry *)

(* Observability acceptance section: (a) the null registry must not perturb
   the scheduling hot path (schedule-identical, and within a ~2% timing
   budget — reported, not asserted, because wall-clock noise on shared
   runners would make a hard gate flaky; BENCH_scaling.json records the
   numbers either way); (b) a live registry demo exports the snapshot as
   JSON and OpenMetrics artifacts; (c) the bench-regression tracker is
   self-tested by feeding it an injected 2x slowdown (must flag) along with
   clean, below-floor and wide-noise-band drifts (must not flag). *)

let telemetry_section () =
  section
    "Telemetry — null-registry overhead on the scheduling hot path, live \
     registry snapshot/OpenMetrics artifacts, and the noise-aware \
     bench-regression tracker self-test";
  let module R = Moldable_obs.Registry in
  let module BT = Moldable_obs.Bench_track in
  let rng = Rng.create 13_579 in
  let p = 64 in
  let dag =
    Moldable_workloads.Random_dag.layered ~rng ~n_layers:12 ~width:12
      ~edge_prob:0.2 ~kind:Speedup.Kind_amdahl ()
  in
  let run ?registry () =
    Engine.run ?registry ~p
      (Online_scheduler.policy ?registry
         ~allocator:Allocator.algorithm2_per_model ~p ())
      dag
  in
  (* Attaching a registry — null or live — must be observation-only. *)
  let live = R.create () in
  let m_default = Schedule.makespan (run ()).Engine.schedule in
  let m_null = Schedule.makespan (run ~registry:R.null ()).Engine.schedule in
  let m_live = Schedule.makespan (run ~registry:live ()).Engine.schedule in
  assert (Float.equal m_default m_null);
  assert (Float.equal m_default m_live);
  let time_reps reps f =
    ignore (f ());
    (* warm-up *)
    let t0 = Clock.now () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Clock.now () -. t0) /. float_of_int reps
  in
  let reps = 40 in
  let t_default = time_reps reps (fun () -> run ()) in
  let t_null = time_reps reps (fun () -> run ~registry:R.null ()) in
  let t_live = time_reps reps (fun () -> run ~registry:(R.create ()) ()) in
  telemetry_probe := Some (t_default, t_null, t_live);
  let pct = 100. *. (t_null -. t_default) /. Float.max 1e-9 t_default in
  Printf.printf
    "per-run cost (%d-task DAG, P=%d, %d reps): default %.6f s, explicit \
     null registry %.6f s (%+.2f%%), live registry %.6f s\n"
    (Dag.n dag) p reps t_default t_null pct t_live;
  if Float.abs pct <= 2. then
    print_string "Null-registry overhead is within the 2% budget.\n"
  else
    Printf.printf
      "note: null-registry delta %+.2f%% is outside the 2%% budget — on a \
       loaded runner this is usually clock noise; the raw numbers land in \
       BENCH_scaling.json under \"telemetry\".\n"
      pct;
  (* Live-registry demo artifacts: the merged snapshot of one run, as the
     JSON schema and as OpenMetrics exposition text. *)
  let snap = R.snapshot live in
  Printf.printf "\nlive registry captured %d metrics from one run\n"
    (List.length snap);
  write_artifact "telemetry_snapshot.json"
    (Moldable_obs.Json.to_string (R.snapshot_to_json snap) ^ "\n");
  write_artifact "telemetry_openmetrics.txt"
    (Moldable_obs.Openmetrics.of_snapshot snap);
  (* Tracker self-test.  The verdict rule is
     [cur - base > max(0.10 * base, 3 * max(base_mad, cur_mad))]. *)
  let row ?(mad = 0.004) median_s =
    {
      BT.section = "probe"; reps = 5; median_s; mad_s = mad; jobs = 1;
      at = 0.; minor_words = 0.; major_words = 0.;
    }
  in
  let verdicts ~base ~cur =
    BT.compare_rows ~baseline:[ base ] ~current:[ cur ]
  in
  let clean = verdicts ~base:(row 1.0) ~cur:(row 1.0) in
  let below_floor = verdicts ~base:(row 1.0) ~cur:(row 1.05) in
  let wide_band = verdicts ~base:(row ~mad:0.2 1.0) ~cur:(row ~mad:0.2 1.3) in
  let injected = verdicts ~base:(row 1.0) ~cur:(row 2.0) in
  assert (BT.regressions clean = []);
  assert (BT.regressions below_floor = []);
  (* 5% < 10% floor *)
  assert (BT.regressions wide_band = []);
  (* 0.3 s < 3 * 0.2 s band *)
  assert (List.length (BT.regressions injected) = 1);
  print_string "\ninjected 2x slowdown, as the tracker reports it:\n";
  print_string (BT.report injected);
  print_string
    "\nTracker self-test passed: the injected 2x slowdown is flagged; \
     identical timings,\na 5% drift (below the 10% floor) and a 30% drift \
     inside a 3xMAD=60% noise band\nare not.\n"

(* ------------------------------------------- BENCH_scaling.json emission *)

let scaling_json () =
  let jf x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null" in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "{\n  \"jobs\": %d,\n" !jobs_flag);
  Buffer.add_string buf "  \"parallel\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"section\": \"%s\", \"jobs\": %d, \"cells\": %d, \"seq_s\": \
            %s, \"par_s\": %s, \"speedup\": %s}"
           r.pl_section r.pl_jobs r.pl_cells (jf r.pl_seq_s) (jf r.pl_par_s)
           (jf (r.pl_seq_s /. Float.max 1e-9 r.pl_par_s))))
    (List.rev !parallel_rows);
  Buffer.add_string buf "],\n  \"telemetry\": ";
  (match !telemetry_probe with
  | None -> Buffer.add_string buf "null"
  | Some (d, n, l) ->
    Buffer.add_string buf
      (Printf.sprintf
         "{\"default_s\": %s, \"null_s\": %s, \"live_s\": %s, \
          \"null_overhead_pct\": %s}"
         (jf d) (jf n) (jf l)
         (jf (100. *. (n -. d) /. Float.max 1e-9 d))));
  Buffer.add_string buf ",\n  \"sections\": [";
  List.iteri
    (fun i (name, dt) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"name\": \"%s\", \"wall_s\": %s}" name (jf dt)))
    (List.rev !section_timings);
  Buffer.add_string buf "],\n  \"alloc_lean\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"mode\": \"%s\", \"tasks\": %d, \"p\": %d, \"wall_s\": %s, \
            \"minor_words\": %s}"
           r.al_mode r.al_tasks r.al_p (jf r.al_wall_s)
           (jf r.al_minor_words)))
    (List.rev !alloc_lean_rows);
  Buffer.add_string buf "],\n  \"service\": ";
  (match !service_probe with
  | None -> Buffer.add_string buf "null"
  | Some pr ->
    Buffer.add_string buf
      (Printf.sprintf
         "{\"tasks\": %d, \"p\": %d, \"submits_per_s\": %s, \"rtt_p50_s\": \
          %s, \"rtt_p99_s\": %s, \"decision_p50_s\": %s, \"decision_p99_s\": \
          %s, \"protocol_errors\": %s}"
         pr.sv_tasks pr.sv_p (jf pr.sv_submits_per_s) (jf pr.sv_rtt_p50_s)
         (jf pr.sv_rtt_p99_s) (jf pr.sv_decision_p50_s)
         (jf pr.sv_decision_p99_s) (jf pr.sv_protocol_errors)));
  Buffer.add_string buf ",\n  \"scaling\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"workload\": \"%s\", \"tasks\": %d, \"p\": %d, \"heap_s\": %s, \
            \"reference_s\": %s, \"speedup\": %s}"
           r.sc_workload r.sc_tasks r.sc_p (jf r.sc_heap_s)
           (match r.sc_reference_s with Some t -> jf t | None -> "null")
           (match r.sc_reference_s with
           | Some t -> jf (t /. Float.max 1e-9 r.sc_heap_s)
           | None -> "null")))
    (List.rev !scaling_rows);
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let () =
  parse_args ();
  Printf.printf
    "Reproduction harness: Online Scheduling of Moldable Task Graphs under \
     Common Speedup Models (ICPP 2022)%s\n"
    (if !jobs_flag > 1 then Printf.sprintf " [jobs=%d]" !jobs_flag else "");
  Pool.with_pool ~jobs:!jobs_flag (fun pool ->
      let selected name =
        match !only_flag with
        | [] -> true
        | names -> List.mem name names
      in
      let timed name f =
        if selected name then begin
          let reps = !reps_flag in
          (* Sections append to the accumulating row refs; on repetitions
             past the first, roll those refs back so the emitted artifacts
             hold exactly one copy of every row (runs are deterministic, so
             the rows themselves are identical across repetitions). *)
          let saved_parallel = !parallel_rows
          and saved_scaling = !scaling_rows
          and saved_alloc_lean = !alloc_lean_rows
          and saved_probe = !telemetry_probe
          and saved_service = !service_probe in
          let samples = ref [] in
          let gc0 = Moldable_obs.Gc_sample.read () in
          for k = 1 to reps do
            if k > 1 then begin
              parallel_rows := saved_parallel;
              scaling_rows := saved_scaling;
              alloc_lean_rows := saved_alloc_lean;
              telemetry_probe := saved_probe;
              service_probe := saved_service
            end;
            let t0 = Clock.now () in
            f ();
            samples := (Clock.now () -. t0) :: !samples
          done;
          let gc =
            Moldable_obs.Gc_sample.diff ~before:gc0
              ~after:(Moldable_obs.Gc_sample.read ())
          in
          let median = Stats.median !samples in
          let mad = Stats.median_absolute_deviation !samples in
          section_timings := (name, median) :: !section_timings;
          bench_rows :=
            {
              Moldable_obs.Bench_track.section = name;
              reps;
              median_s = median;
              mad_s = mad;
              jobs = !jobs_flag;
              at = Unix.time ();
              (* allocation averaged per repetition, to stay comparable
                 across different --reps settings *)
              minor_words = gc.Moldable_obs.Gc_sample.minor_words
                            /. float_of_int reps;
              major_words = gc.Moldable_obs.Gc_sample.major_words
                            /. float_of_int reps;
            }
            :: !bench_rows
        end
      in
      timed "table1_upper" table1_upper;
      timed "table1_lower" table1_lower;
      timed "table1_measured" (table1_measured pool);
      timed "convergence_plots" (convergence_plots pool);
      timed "table2" table2;
      timed "figure1" figure1;
      timed "figure2" figure2;
      timed "figure3" figure3;
      timed "figure4" figure4;
      timed "theorem9" theorem9;
      timed "empirical" (empirical pool);
      timed "independent" independent_section;
      timed "mu_sensitivity" (mu_sensitivity pool);
      timed "power_law" power_law_section;
      timed "failures" (failures_section pool);
      timed "release_times" release_times_section;
      timed "regimes" regimes_section;
      timed "offline" offline_section;
      timed "lemmas" lemmas_section;
      timed "tracing" (tracing_section pool);
      timed "scalability" scalability;
      timed "scalability_hot_path" (scalability_hot_path pool);
      timed "alloc_lean" alloc_lean_section;
      timed "service" service_section;
      timed "parallel_sweep" (parallel_sweep pool);
      timed "exact_oracle" (exact_oracle pool);
      timed "improved_ratio" (improved_ratio pool);
      timed "telemetry" telemetry_section;
      timed "micro_benchmarks" micro_benchmarks);
  write_artifact "BENCH_scaling.json" (scaling_json ());
  let rows = List.rev !bench_rows in
  if (not !no_history_flag) && rows <> [] then begin
    let dir = !artifacts_flag in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir "BENCH_history.jsonl" in
    Moldable_obs.Bench_track.append_history ~path rows;
    Printf.printf "  [history] %s (+%d rows)\n" path (List.length rows)
  end;
  (match !baseline_flag with
  | None -> ()
  | Some path -> (
    match Moldable_obs.Bench_track.read_baseline ~path with
    | Error e ->
      Printf.eprintf "cannot read baseline %s: %s\n" path e;
      exit 1
    | Ok baseline ->
      let verdicts =
        Moldable_obs.Bench_track.compare_rows ~baseline ~current:rows
      in
      Printf.printf "\nBaseline comparison vs %s:\n%s" path
        (Moldable_obs.Bench_track.report verdicts);
      let regs = Moldable_obs.Bench_track.regressions verdicts in
      if regs = [] then
        print_string
          "No regression beyond the noise-aware threshold \
           max(10%, 3 x MAD).\n"
      else begin
        Printf.printf
          "%d section(s) regressed beyond max(10%%, 3 x MAD)%s\n"
          (List.length regs)
          (if !baseline_strict_flag then "." else " (report-only).");
        if !baseline_strict_flag then exit 1
      end));
  Printf.printf "\nAll sections completed.\n"
