(* Command-line driver for the moldable-scheduling library.

   Subcommands:
     table1    recompute both rows of Table 1
     figure    regenerate a figure (1-4) on stdout (DOT / Gantt)
     theorem9  the Omega(ln D) scaling table
     simulate  generate a workload, schedule it, report and/or draw it
     trace     run with decision-level tracing (provenance, Chrome trace,
               Gantt, ratio accounting, self-profile)
     verify    run Algorithm 1 and check the Lemma 3/4/5 inequalities
     sweep     compare policies over random instances
     metrics   pretty-print a --telemetry snapshot (or emit OpenMetrics) *)

open Cmdliner
open Moldable_model
open Moldable_graph
open Moldable_sim
open Moldable_util
open Moldable_core
open Moldable_theory
open Moldable_adversary
open Moldable_analysis

(* ------------------------------------------------------- shared arguments *)

let kind_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "roofline" -> Ok Speedup.Kind_roofline
    | "communication" | "comm" -> Ok Speedup.Kind_communication
    | "amdahl" -> Ok Speedup.Kind_amdahl
    | "general" -> Ok Speedup.Kind_general
    | "power" -> Ok Speedup.Kind_power
    | other -> Error (`Msg (Printf.sprintf "unknown speedup model %S" other))
  in
  Arg.conv (parse, fun ppf k -> Format.fprintf ppf "%s" (Speedup.kind_name k))

let kind_arg =
  Arg.(
    value
    & opt kind_conv Speedup.Kind_general
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:"Speedup model: roofline, communication, amdahl, general or power.")

let p_arg default =
  Arg.(
    value & opt int default
    & info [ "p"; "procs" ] ~docv:"P" ~doc:"Number of processors.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are reproducible).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for the parallel parts (policy sweeps fan out per \
           (policy, instance) cell, large schedules validate in parallel). \
           Results are bit-identical at any job count; 1 (the default) is \
           fully sequential.")

let with_jobs ?registry jobs f =
  if jobs < 1 then begin
    Printf.eprintf
      "moldable: option '--jobs': value must be >= 1 (got %d)\nUsage: pass a \
       positive worker-domain count, e.g. --jobs 2\n"
      jobs;
    exit 2
  end;
  Pool.with_pool ~jobs ?registry f

(* ----------------------------------------------------------- telemetry *)

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Attach a live telemetry registry to the run and write the merged \
           snapshot to $(docv) as JSON (schema moldable_obs/snapshot/v1): \
           simulation counters, allocator Step-1 probe histogram, pool \
           gauges/latency and GC gauges.  Use the $(b,metrics) subcommand \
           to pretty-print or convert the snapshot to OpenMetrics.")

let registry_of_telemetry = function
  | None -> Moldable_obs.Registry.null
  | Some _ -> Moldable_obs.Registry.create ()

(* Finish a telemetry run: fold the process-GC delta into the registry as
   gauges, snapshot, and write the JSON document. *)
let write_telemetry ~registry ~gc_before = function
  | None -> ()
  | Some path ->
    let gc_after = Moldable_obs.Gc_sample.read () in
    Moldable_obs.Gc_sample.observe registry
      (Moldable_obs.Gc_sample.diff ~before:gc_before ~after:gc_after);
    let snap = Moldable_obs.Registry.snapshot registry in
    let oc = open_out path in
    output_string oc
      (Moldable_obs.Json.to_string
         (Moldable_obs.Registry.snapshot_to_json snap));
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path

let algorithm_conv =
  Arg.enum [ ("original", `Original); ("improved", `Improved) ]

let algorithm_arg =
  Arg.(
    value
    & opt algorithm_conv `Original
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:
          "Online algorithm: $(b,original) (ICPP 2022 Algorithm 1 with \
           per-model mu) or $(b,improved) (Perotin-Sun 2023 with decoupled \
           per-model (mu, rho)).")

let allocator_of = function
  | `Original -> Allocator.algorithm2_per_model
  | `Improved -> Improved_alloc.per_model

let proven_bound_of algo kind =
  match algo with
  | `Original -> Ratio_report.table1_upper_bound kind
  | `Improved -> Ratio_report.improved_upper_bound kind

let workload_conv =
  Arg.enum
    [
      ("layered", `Layered); ("erdos", `Erdos); ("independent", `Independent);
      ("chain", `Chain); ("fork-join", `Fork_join); ("cholesky", `Cholesky);
      ("lu", `Lu); ("montage", `Montage); ("epigenomics", `Epigenomics);
      ("cybershake", `Cybershake); ("ligo", `Ligo);
    ]

let workload_arg =
  Arg.(
    value & opt workload_conv `Layered
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:
          "Workload family: layered, erdos, independent, chain, fork-join, \
           cholesky, lu, montage, epigenomics, cybershake or ligo.")

let size_arg =
  Arg.(
    value & opt int 40
    & info [ "n"; "size" ] ~docv:"N"
        ~doc:"Workload size (task count target / tiles / width).")

let make_workload which ~rng ~n ~kind =
  match which with
  | `Layered ->
    Moldable_workloads.Random_dag.layered ~rng ~n_layers:(max 2 (n / 8))
      ~width:8 ~edge_prob:0.3 ~kind ()
  | `Erdos ->
    Moldable_workloads.Random_dag.erdos_renyi ~rng ~n ~edge_prob:0.1 ~kind ()
  | `Independent -> Moldable_workloads.Random_dag.independent ~rng ~n ~kind ()
  | `Chain -> Moldable_workloads.Structured.chain ~rng ~n ~kind ()
  | `Fork_join ->
    Moldable_workloads.Structured.fork_join ~rng ~stages:(max 1 (n / 10))
      ~width:8 ~kind ()
  | `Cholesky ->
    Moldable_workloads.Linalg.cholesky ~rng ~tiles:(max 2 (n / 10)) ~kind ()
  | `Lu -> Moldable_workloads.Linalg.lu ~rng ~tiles:(max 2 (n / 10)) ~kind ()
  | `Montage -> Moldable_workloads.Scientific.montage ~rng ~width:n ~kind ()
  | `Epigenomics ->
    Moldable_workloads.Scientific.epigenomics ~rng ~lanes:4
      ~fanout:(max 1 (n / 4)) ~kind ()
  | `Cybershake ->
    Moldable_workloads.Scientific.cybershake ~rng ~sites:(max 1 (n / 10))
      ~variations:8 ~kind ()
  | `Ligo ->
    Moldable_workloads.Scientific.ligo ~rng ~blocks:(max 1 (n / 12))
      ~per_block:10 ~kind ()

(* ---------------------------------------------------------------- table1 *)

let table1_cmd =
  let run () =
    let tab =
      Texttab.create ~headers:[ "model"; "upper (ours)"; "paper"; "lower (ours)"; "paper" ]
    in
    let uppers = Model_bounds.table1_upper () in
    let lowers = Lower_bounds.table1_lower () in
    List.iter2
      (fun (u : Model_bounds.row) (l : Lower_bounds.row) ->
        Texttab.add_row tab
          [
            Model_bounds.family_name u.Model_bounds.family;
            Printf.sprintf "%.4f" u.Model_bounds.ratio;
            Printf.sprintf "%.2f" u.Model_bounds.paper_ratio;
            Printf.sprintf "%.4f" l.Lower_bounds.bound;
            Printf.sprintf "%.2f" l.Lower_bounds.paper_bound;
          ])
      uppers lowers;
    Texttab.print tab
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Recompute both rows of Table 1.")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- figure *)

let figure_cmd =
  let run n p =
    match n with
    | 1 ->
      let inst = Instances.communication ~p:(max 12 p) in
      print_string (Moldable_viz.Dot.of_dag ~name:"figure1" inst.Instances.dag)
    | 2 ->
      let inst = Instances.communication ~p:(max 12 (min p 64)) in
      let online = Instances.run_online inst in
      let label i = (Dag.task inst.Instances.dag i).Task.label in
      Printf.printf "(a) Algorithm 1:\n%s\n"
        (Moldable_viz.Gantt.render ~width:72 ~legend:false ~label
           online.Engine.schedule);
      Printf.printf "(b) clairvoyant alternative:\n%s"
        (Moldable_viz.Gantt.render ~width:72 ~legend:false ~label
           inst.Instances.alternative)
    | 3 ->
      let inst = Chains.build ~ell:2 in
      print_string (Moldable_viz.Dot.of_dag ~name:"figure3" inst.Chains.dag)
    | 4 ->
      let inst = Chains.build ~ell:2 in
      let off = Chain_adversary.offline_schedule inst in
      let eq = Chain_adversary.equal_split_schedule inst in
      Printf.printf "(a) offline, makespan %.4f:\n%s\n" (Schedule.makespan off)
        (Moldable_viz.Gantt.render ~width:72 ~max_rows:16 ~legend:false off);
      Printf.printf "(b) online equal-allocation, makespan %.4f:\n%s"
        (Schedule.makespan eq)
        (Moldable_viz.Gantt.render ~width:72 ~max_rows:16 ~legend:false eq)
    | other -> Printf.eprintf "no figure %d (the paper has figures 1-4)\n" other
  in
  let n_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Figure number (1-4).")
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate a figure of the paper on stdout.")
    Term.(const run $ n_arg $ p_arg 16)

(* -------------------------------------------------------------- theorem9 *)

let theorem9_cmd =
  let run () =
    let tab =
      Texttab.create
        ~headers:[ "l"; "K"; "ln K - ln l - 1/l"; "Lemma 10 sum"; "equal-split" ]
    in
    List.iter
      (fun ell ->
        let params = Arbitrary_lb.params ~ell in
        Texttab.add_row tab
          [
            string_of_int ell;
            string_of_int params.Arbitrary_lb.k;
            Printf.sprintf "%.3f" (Arbitrary_lb.log_gap ~ell);
            Printf.sprintf "%.3f" (Arbitrary_lb.adversary_gap_sum ~ell);
            Printf.sprintf "%.3f"
              (Chain_adversary.equal_split ~ell).Chain_adversary.makespan;
          ])
      [ 1; 2; 3; 4; 5 ];
    Texttab.print tab
  in
  Cmd.v
    (Cmd.info "theorem9" ~doc:"The Omega(ln D) lower-bound scaling table.")
    Term.(const run $ const ())

(* -------------------------------------------------------------- simulate *)

let simulate_cmd =
  let run kind p seed workload n gantt svg load save swf metrics_out algo jobs
      telemetry =
    let registry = registry_of_telemetry telemetry in
    let gc_before = Moldable_obs.Gc_sample.read () in
    with_jobs ~registry jobs @@ fun pool ->
    let rng = Rng.create seed in
    let dag, releases =
      match (load, swf) with
      | Some _, Some _ ->
        Printf.eprintf "--load and --swf are mutually exclusive\n";
        exit 1
      | Some path, None -> (
        match Dag_io.of_file path with
        | Ok dag -> (dag, None)
        | Error e ->
          Printf.eprintf "cannot load %s: %s\n" path e;
          exit 1)
      | None, Some path -> (
        match Moldable_workloads.Swf.parse_file path with
        | Ok { Moldable_workloads.Swf.jobs; skipped_lines }
          when jobs <> [] ->
          if skipped_lines > 0 then
            Printf.printf "note: skipped %d unusable record(s) in %s\n"
              skipped_lines path;
          let dag, rel = Moldable_workloads.Swf.to_workload ~rng jobs in
          (dag, Some rel)
        | Ok _ ->
          Printf.eprintf "trace %s contains no usable jobs\n" path;
          exit 1
        | Error e ->
          Printf.eprintf "cannot parse %s: %s\n" path e;
          exit 1)
      | None, None -> (make_workload workload ~rng ~n ~kind, None)
    in
    (match save with
    | None -> ()
    | Some path -> (
      match Dag_io.to_file path dag with
      | Ok () -> Printf.printf "saved graph to %s\n" path
      | Error e ->
        Printf.eprintf "cannot save %s: %s\n" path e;
        exit 1));
    let result =
      Engine.run ?release_times:releases ~registry ~p
        (Online_scheduler.policy ~registry ~allocator:(allocator_of algo) ~p
           ())
        dag
    in
    Validate.check_exn ~pool ~dag result.Engine.schedule;
    let bounds = Bounds.compute ~p dag in
    let makespan = Schedule.makespan result.Engine.schedule in
    Printf.printf "%s\n" (Format.asprintf "%a" Dag.pp_stats dag);
    Printf.printf "%s\n" (Format.asprintf "%a" Bounds.pp bounds);
    Printf.printf "makespan %.4f  ratio-vs-LB %.4f  avg-utilization %.1f%%\n"
      makespan
      (makespan /. bounds.Bounds.lower_bound)
      (100. *. Schedule.average_utilization result.Engine.schedule);
    Printf.printf "%s\n"
      (Format.asprintf "%a" Moldable_sim.Metrics.pp result.Engine.metrics);
    (match metrics_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Moldable_sim.Metrics.to_json result.Engine.metrics);
      close_out oc;
      Printf.printf "wrote %s\n" path);
    if gantt then
      print_string
        (Moldable_viz.Gantt.render ~width:100
           ~label:(fun i -> (Dag.task dag i).Task.label)
           result.Engine.schedule);
    (match svg with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Moldable_viz.Svg.of_schedule
           ~label:(fun i -> (Dag.task dag i).Task.label)
           result.Engine.schedule);
      close_out oc;
      Printf.printf "wrote %s\n" path);
    write_telemetry ~registry ~gc_before telemetry
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart.")
  in
  let svg_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Write the schedule as SVG to $(docv).")
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Load the task graph from $(docv) instead of generating one.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the task graph to $(docv).")
  in
  let swf_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "swf" ] ~docv:"TRACE"
          ~doc:
            "Replay a Standard Workload Format trace: jobs become \
             independent moldable tasks released at their submit times.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the run's instrumentation report (counters, utilization \
             timeline, queue depth, per-task waits) as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Generate (or load) a workload, run the selected online algorithm \
          on it and report.")
    Term.(
      const run $ kind_arg $ p_arg 64 $ seed_arg $ workload_arg $ size_arg
      $ gantt_arg $ svg_arg $ load_arg $ save_arg $ swf_arg $ metrics_arg
      $ algorithm_arg $ jobs_arg $ telemetry_arg)

(* ----------------------------------------------------------------- trace *)

let trace_cmd =
  let run kind p seed workload n load chrome gantt explain algo jobs =
    with_jobs jobs @@ fun pool ->
    let rng = Rng.create seed in
    let dag, workload_name =
      match load with
      | Some path -> (
        match Dag_io.of_file path with
        | Ok dag -> (dag, Filename.basename path)
        | Error e ->
          Printf.eprintf "cannot load %s: %s\n" path e;
          exit 1)
      | None ->
        let name =
          match workload with
          | `Layered -> "layered" | `Erdos -> "erdos"
          | `Independent -> "independent" | `Chain -> "chain"
          | `Fork_join -> "fork-join" | `Cholesky -> "cholesky"
          | `Lu -> "lu" | `Montage -> "montage"
          | `Epigenomics -> "epigenomics" | `Cybershake -> "cybershake"
          | `Ligo -> "ligo"
        in
        (make_workload workload ~rng ~n ~kind, name)
    in
    let label i = (Dag.task dag i).Task.label in
    let tracer = Moldable_sim.Tracer.create () in
    let result =
      Online_scheduler.run_instrumented ~allocator:(allocator_of algo) ~tracer
        ~p dag
    in
    Validate.check_exn ~pool ~dag result.Sim_core.schedule;
    let makespan = Schedule.makespan result.Sim_core.schedule in
    Printf.printf "%s\n" (Format.asprintf "%a" Dag.pp_stats dag);
    Printf.printf "%s\n"
      (Format.asprintf "%a" Moldable_sim.Metrics.pp result.Sim_core.metrics);
    let entry =
      Ratio_report.of_run
        ~proven_bound:(proven_bound_of algo (Ratio_report.kind_of_dag dag))
        ~workload:workload_name ~p ~makespan dag
    in
    Printf.printf "%s\n" (Format.asprintf "%a" Ratio_report.pp_entry entry);
    Printf.printf
      "trace: %d decision records, %d execution spans, %d instants\n"
      (Moldable_sim.Tracer.n_decisions tracer)
      (Moldable_sim.Tracer.n_spans tracer)
      (List.length (Moldable_sim.Tracer.instants tracer));
    Printf.printf "self-profile:\n%s"
      (Format.asprintf "%a" Moldable_sim.Tracer.pp_profile tracer);
    (match chrome with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Moldable_viz.Chrome_trace.of_run ~label tracer
           result.Sim_core.metrics);
      close_out oc;
      Printf.printf
        "wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n"
        path);
    (match gantt with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Moldable_viz.Svg.of_schedule ~label result.Sim_core.schedule);
      close_out oc;
      Printf.printf "wrote %s\n" path);
    match explain with
    | None -> ()
    | Some tid -> (
      match Moldable_sim.Tracer.decision_for tracer tid with
      | Some d ->
        Printf.printf "\n%s"
          (Format.asprintf "%a" Moldable_sim.Tracer.pp_decision d)
      | None ->
        Printf.eprintf "no decision record for task %d (graph has %d tasks)\n"
          tid (Dag.n dag);
        exit 1)
  in
  let load_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Load the task graph from $(docv) instead of generating one.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the execution trace as Chrome trace-event JSON to $(docv) \
             (loads in chrome://tracing and Perfetto: one lane per \
             processor block, counter tracks for free processors and queue \
             depth).")
  in
  let gantt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "gantt" ] ~docv:"FILE"
          ~doc:"Write the traced schedule as a Gantt SVG to $(docv).")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "explain" ] ~docv:"TASK"
          ~doc:
            "Print the allocation-provenance record of task $(docv): \
             p_max/t_min/a_min, the Step-1 initial allocation with its \
             alpha/beta ratios and candidates scanned, the beta budget \
             delta(mu), and whether the ceil(mu P) cap bit.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the selected online algorithm with decision-level tracing: \
          allocation provenance per task, Chrome trace-event / Gantt \
          export, ratio accounting vs the Lemma 2 bound, and a \
          self-profile.")
    Term.(
      const run $ kind_arg $ p_arg 64 $ seed_arg $ workload_arg $ size_arg
      $ load_arg $ chrome_arg $ gantt_arg $ explain_arg $ algorithm_arg
      $ jobs_arg)

(* ---------------------------------------------------------------- verify *)

let verify_cmd =
  let run kind p seed workload n =
    let rng = Rng.create seed in
    let dag = make_workload workload ~rng ~n ~kind in
    let mu = Mu.default kind in
    let sched =
      (Online_scheduler.run ~allocator:(Allocator.algorithm2 ~mu) ~p dag)
        .Engine.schedule
    in
    Validate.check_exn ~dag sched;
    let report = Lemmas.verify ~mu ~dag sched in
    Format.printf "%a@." Lemmas.pp report;
    if not report.Lemmas.all_hold then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run Algorithm 1 and check the Lemma 3/4/5 inequalities of the \
          analysis on the schedule.")
    Term.(const run $ kind_arg $ p_arg 64 $ seed_arg $ workload_arg $ size_arg)

(* ----------------------------------------------------------------- sweep *)

let sweep_cmd =
  let run kind p seed reps algo jobs telemetry =
    let registry = registry_of_telemetry telemetry in
    let gc_before = Moldable_obs.Gc_sample.read () in
    with_jobs ~registry jobs @@ fun pool ->
    (* All instances are generated before the fan-out, so the sweep result
       is independent of the job count. *)
    let rng = Rng.create seed in
    let dags =
      List.init reps (fun _ ->
          Moldable_workloads.Random_dag.layered ~rng ~n_layers:6 ~width:8
            ~edge_prob:0.25 ~kind ())
    in
    let lead =
      match algo with
      | `Original -> Experiment.algorithm1_fixed_mu (Mu.default kind)
      | `Improved -> Experiment.improved
    in
    let policies = lead :: List.tl Experiment.default_policies in
    let outcomes =
      Experiment.evaluate ~pool ~registry ~p ~workload:"layered" ~policies
        dags
    in
    let bound =
      (* Power-law graphs carry no guarantee; keep the general-model bound
         as the reference line like the original sweep always did. *)
      match kind with
      | Speedup.Kind_power | Speedup.Kind_arbitrary ->
        proven_bound_of algo Speedup.Kind_general
      | k -> proven_bound_of algo k
    in
    print_string (Report.table ~bound outcomes);
    write_telemetry ~registry ~gc_before telemetry
  in
  let reps_arg =
    Arg.(
      value & opt int 20
      & info [ "r"; "reps" ] ~docv:"R" ~doc:"Number of random instances.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Compare the selected online algorithm against the baselines on \
          random instances.")
    Term.(
      const run $ kind_arg $ p_arg 64 $ seed_arg $ reps_arg $ algorithm_arg
      $ jobs_arg $ telemetry_arg)

(* --------------------------------------------------------------- metrics *)

let metrics_cmd =
  let run file openmetrics =
    let contents =
      match In_channel.with_open_text file In_channel.input_all with
      | s -> s
      | exception Sys_error e ->
        Printf.eprintf "cannot read %s: %s\n" file e;
        exit 1
    in
    let snap =
      match Moldable_obs.Json.of_string contents with
      | Error e ->
        Printf.eprintf "%s: invalid JSON: %s\n" file e;
        exit 1
      | Ok j -> (
        match Moldable_obs.Registry.snapshot_of_json j with
        | Error e ->
          Printf.eprintf "%s: %s\n" file e;
          exit 1
        | Ok snap -> snap)
    in
    if openmetrics then
      print_string (Moldable_obs.Openmetrics.of_snapshot snap)
    else begin
      let tab = Texttab.create ~headers:Moldable_obs.Registry.row_header in
      List.iter (Texttab.add_row tab) (Moldable_obs.Registry.to_rows snap);
      Texttab.print tab
    end
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Telemetry snapshot written by --telemetry (JSON).")
  in
  let openmetrics_arg =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Emit the snapshot in OpenMetrics/Prometheus text exposition \
             format instead of a table.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Pretty-print a telemetry snapshot (or convert it to OpenMetrics).")
    Term.(const run $ file_arg $ openmetrics_arg)

(* ----------------------------------------------------------------- serve *)

(* The daemon and its client speak the line-delimited JSON protocol of
   lib/service; runtime failures (bind/connect refused) exit 125 per the
   CLI exit-code contract, schedule divergence in the client exits 1. *)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host to bind/connect to.")

let port_arg =
  Arg.(
    value & opt int 7464
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP port (0 binds an ephemeral port and prints it).")

let socket_arg =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Serve/connect on a Unix-domain socket instead of TCP.")

let serve_cmd =
  let run host port socket sessions idle_timeout max_line =
    if sessions < 1 then begin
      Printf.eprintf "moldable serve: --sessions must be >= 1 (got %d)\n"
        sessions;
      exit 2
    end;
    let registry = Moldable_obs.Registry.create () in
    let config =
      {
        Moldable_service.Server.sessions;
        limits =
          {
            Moldable_service.Server.default_limits with
            idle_timeout;
            max_line_bytes = max_line;
          };
        registry;
      }
    in
    let listener =
      match socket with
      | Some path -> Moldable_service.Server.listen_unix ~path
      | None -> Moldable_service.Server.listen_tcp ~host ~port
    in
    match listener with
    | Error e ->
      Printf.eprintf "moldable serve: cannot listen: %s\n" e;
      exit 125
    | Ok listener ->
      let stop = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Sys.set_signal Sys.sigterm on_signal;
      Sys.set_signal Sys.sigint on_signal;
      Printf.printf "listening on %s\n%!"
        (Moldable_service.Server.address listener);
      Moldable_service.Server.serve ~stop config listener;
      Printf.printf "drained, shutting down\n%!"
  in
  let sessions_arg =
    Arg.(
      value & opt int 2
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Concurrent session workers (also worker domains).")
  in
  let idle_arg =
    Arg.(
      value & opt float 300.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close a session after this long without a request.")
  in
  let max_line_arg =
    Arg.(
      value & opt int (1 lsl 20)
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:"Longest accepted request line.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduler daemon: line-delimited JSON over TCP or a Unix \
          socket, one simulation session per connection (submit moldable \
          tasks online, advance the virtual clock, drain, read the \
          schedule back).  SIGTERM drains gracefully.")
    Term.(
      const run $ host_arg $ port_arg $ socket_arg $ sessions_arg $ idle_arg
      $ max_line_arg)

(* ---------------------------------------------------------------- client *)

let client_cmd =
  let run host port socket kind p seed workload n load swf algo priority
      openmetrics =
    let rng = Rng.create seed in
    let dag, releases =
      match (load, swf) with
      | Some _, Some _ ->
        Printf.eprintf "--load and --swf are mutually exclusive\n";
        exit 2
      | Some path, None -> (
        match Dag_io.of_file path with
        | Ok dag -> (dag, None)
        | Error e ->
          Printf.eprintf "cannot load %s: %s\n" path e;
          exit 125)
      | None, Some path -> (
        match Moldable_workloads.Swf.parse_file path with
        | Ok { Moldable_workloads.Swf.jobs; skipped_lines } when jobs <> [] ->
          if skipped_lines > 0 then
            Printf.printf "note: skipped %d unusable record(s) in %s\n"
              skipped_lines path;
          let dag, rel = Moldable_workloads.Swf.to_workload ~rng jobs in
          (dag, Some rel)
        | Ok _ ->
          Printf.eprintf "trace %s contains no usable jobs\n" path;
          exit 125
        | Error e ->
          Printf.eprintf "cannot parse %s: %s\n" path e;
          exit 125)
      | None, None -> (make_workload workload ~rng ~n ~kind, None)
    in
    let conn =
      match socket with
      | Some path -> Moldable_service.Client.connect_unix ~path ()
      | None -> Moldable_service.Client.connect_tcp ~host ~port ()
    in
    match conn with
    | Error e ->
      Printf.eprintf "moldable client: cannot connect: %s\n" e;
      exit 125
    | Ok conn -> (
      let finish code =
        ignore
          (Moldable_service.Client.rpc conn Moldable_service.Protocol.Close
            : (_, _) result);
        Moldable_service.Client.close conn;
        exit code
      in
      match
        Moldable_service.Client.replay ?release_times:releases
          ~algorithm:algo ~priority ~p conn dag
      with
      | Error e ->
        Printf.eprintf "moldable client: %s\n" e;
        Moldable_service.Client.close conn;
        exit 125
      | Ok report ->
        Printf.printf "server makespan %.4f\n"
          report.Moldable_service.Client.server_makespan;
        Printf.printf "local makespan %.4f\n"
          report.Moldable_service.Client.local_makespan;
        if openmetrics then (
          match Moldable_service.Client.fetch_metrics conn with
          | Ok om -> print_string om
          | Error e ->
            Printf.eprintf "moldable client: cannot fetch metrics: %s\n" e;
            finish 125);
        if report.Moldable_service.Client.identical then begin
          Printf.printf "schedules identical: yes (%d tasks)\n"
            report.Moldable_service.Client.n_tasks;
          finish 0
        end
        else begin
          Printf.printf "schedules identical: no\n";
          Printf.eprintf "divergence: %s\n"
            (Option.value ~default:"?"
               report.Moldable_service.Client.mismatch);
          finish 1
        end)
  in
  let load_arg =
    Arg.(
      value & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Replay the task graph in $(docv) (Dag_io format).")
  in
  let swf_arg =
    Arg.(
      value & opt (some string) None
      & info [ "swf" ] ~docv:"TRACE"
          ~doc:
            "Replay a Standard Workload Format trace as independent \
             moldable tasks with release times.")
  in
  let priority_arg =
    Arg.(
      value & opt string "fifo"
      & info [ "priority" ] ~docv:"RULE"
          ~doc:
            "Waiting-queue priority rule: fifo, longest-first, \
             largest-area-first, widest-first or narrowest-first.")
  in
  let openmetrics_arg =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"Also scrape the server registry and print the OpenMetrics \
                exposition.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Replay a workload against a running scheduler daemon and diff the \
          returned schedule against a local simulation of the identical \
          configuration (exit 0 when bit-identical, 1 on divergence).")
    Term.(
      const run $ host_arg $ port_arg $ socket_arg $ kind_arg $ p_arg 64
      $ seed_arg $ workload_arg $ size_arg $ load_arg $ swf_arg
      $ algorithm_arg $ priority_arg $ openmetrics_arg)

let () =
  let info =
    Cmd.info "moldable"
      ~doc:
        "Online scheduling of moldable task graphs (ICPP 2022 reproduction)."
  in
  let group =
    Cmd.group info
      [ table1_cmd; figure_cmd; theorem9_cmd; simulate_cmd; trace_cmd;
        verify_cmd; sweep_cmd; metrics_cmd; serve_cmd; client_cmd ]
  in
  (* Conventional exit codes: usage errors (unknown subcommand, unknown
     flag, unparsable option value) exit 2, uncaught exceptions 125 —
     cmdliner's defaults (124/125) surprise shell scripts and CI. *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok ()) | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
